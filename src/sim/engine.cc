#include "sim/engine.hh"

namespace ibp::sim {

Engine::Engine(const EngineConfig &config)
    : config_(config)
{
}

RunMetrics
Engine::run(trace::BranchSource &source,
            pred::IndirectPredictor &predictor)
{
    RunMetrics metrics;
    pred::ReturnAddressStack ras(config_.rasDepth);

    trace::BranchRecord record;
    while (source.next(record)) {
        ++metrics.branches;

        if (record.isPredictedIndirect()) {
            ++metrics.mtIndirect;
            const pred::Prediction prediction =
                predictor.predict(record.pc);
            const bool miss = !prediction.hit(record.target);
            metrics.indirectMisses.sample(miss);
            metrics.noPrediction.sample(!prediction.valid);
            if (config_.perSiteStats) {
                SiteMetrics &site = metrics.perSite[record.pc];
                site.misses.sample(miss);
                site.lastTarget = record.target;
            }
            predictor.update(record.pc, record.target);
        } else if (record.kind == trace::BranchKind::Return &&
                   config_.useRas) {
            trace::Addr predicted = 0;
            const bool got = ras.pop(predicted);
            metrics.returnMisses.sample(!got ||
                                        predicted != record.target);
        }

        if (record.call && config_.useRas)
            ras.push(record.pc + 4);

        predictor.observe(record);
    }
    return metrics;
}

} // namespace ibp::sim
