#include "sim/engine.hh"

#include <algorithm>

#include "predictors/btb.hh"
#include "core/ppm_predictor.hh"

namespace ibp::sim {

namespace {

/**
 * The replay loop, templated on the concrete predictor type.  For the
 * hot predictor classes (final types dispatched below) the compiler
 * devirtualizes and inlines predictAndUpdate()/observe() straight into
 * the loop; instantiated with the base class it degrades to exactly
 * one virtual call per predicted branch and one per observed record.
 * Either way the per-record protocol — predict -> update -> observe,
 * in trace order — is the same code, so metrics are bit-identical
 * across instantiations.
 *
 * @p limit bounds the records consumed (ReplaySession::kNoLimit = run
 * to exhaustion).  The unbounded case keeps the zero-copy nextSpan()
 * fast path; a bounded run clamps nextBatch() instead, because a span
 * consumes the whole remainder and cannot stop at a record boundary.
 * @return records consumed.
 */
template <typename Predictor>
std::uint64_t
replay(const EngineConfig &config, trace::BranchSource &source,
       Predictor &predictor, pred::ReturnAddressStack &ras,
       RunMetrics &metrics, std::uint64_t limit)
{
    // Loop-invariant configuration and the predictor's observe()
    // interest are hoisted out of the hot loop.
    const bool use_ras = config.useRas;
    const bool per_site = config.perSiteStats;
    const bool observes = predictor.wantsObserve();
    const bool unbounded = limit == ReplaySession::kNoLimit;

    std::uint64_t consumed = 0;
    trace::BranchRecord batch[Engine::kReplayBatch];
    while (unbounded || consumed < limit) {
        const trace::BranchRecord *span = nullptr;
        std::size_t n = 0;
        if (unbounded)
            n = source.nextSpan(span);
        if (n == 0) {
            const std::size_t want =
                unbounded ? Engine::kReplayBatch
                          : static_cast<std::size_t>(std::min<
                                std::uint64_t>(Engine::kReplayBatch,
                                               limit - consumed));
            n = source.nextBatch(batch, want);
            if (n == 0)
                break;
            span = batch;
        }
        metrics.branches += n;
        consumed += n;

        for (std::size_t b = 0; b < n; ++b) {
            const trace::BranchRecord &record = span[b];

            if (record.isPredictedIndirect()) {
                ++metrics.mtIndirect;
                const pred::Prediction prediction =
                    predictor.predictAndUpdate(record.pc, record.target);
                const bool miss = !prediction.hit(record.target);
                metrics.indirectMisses.sample(miss);
                metrics.noPrediction.sample(!prediction.valid);
                if (per_site) {
                    SiteMetrics &site = metrics.perSite[record.pc];
                    site.misses.sample(miss);
                    site.lastTarget = record.target;
                }
            } else if (record.kind == trace::BranchKind::Return &&
                       use_ras) {
                trace::Addr predicted = 0;
                const bool got = ras.pop(predicted);
                metrics.returnMisses.sample(!got ||
                                            predicted != record.target);
            }

            if (record.call && use_ras)
                ras.push(record.pc + 4);

            if (observes)
                predictor.observe(record);
        }
    }
    return consumed;
}

/**
 * Type-switch devirtualization: one dynamic_cast per run (not per
 * record) routes the hottest concrete predictors into fully inlined
 * replay loops.  Anything else — composite predictors, test doubles —
 * takes the generic virtual loop with identical semantics.
 */
std::uint64_t
dispatchReplay(const EngineConfig &config, trace::BranchSource &source,
               pred::IndirectPredictor &predictor,
               pred::ReturnAddressStack &ras, RunMetrics &metrics,
               std::uint64_t limit)
{
    if (auto *btb = dynamic_cast<pred::Btb *>(&predictor))
        return replay(config, source, *btb, ras, metrics, limit);
    if (auto *btb2b = dynamic_cast<pred::Btb2b *>(&predictor))
        return replay(config, source, *btb2b, ras, metrics, limit);
    if (auto *ppm = dynamic_cast<core::PpmPredictor *>(&predictor))
        return replay(config, source, *ppm, ras, metrics, limit);
    return replay(config, source, predictor, ras, metrics, limit);
}

} // namespace

Engine::Engine(const EngineConfig &config)
    : config_(config)
{
}

RunMetrics
Engine::run(trace::BranchSource &source,
            pred::IndirectPredictor &predictor,
            obs::ProbeRegistry *probes)
{
    ReplaySession session(config_);
    session.run(source, predictor);
    if (probes)
        session.snapshotProbes(*probes, predictor);
    return session.metrics();
}

ReplaySession::ReplaySession(const EngineConfig &config)
    : config_(config), ras_(config.rasDepth)
{
}

std::uint64_t
ReplaySession::run(trace::BranchSource &source,
                   pred::IndirectPredictor &predictor,
                   std::uint64_t limit)
{
    return dispatchReplay(config_, source, predictor, ras_, metrics_,
                          limit);
}

void
ReplaySession::snapshotProbes(obs::ProbeRegistry &registry,
                              const pred::IndirectPredictor &predictor)
    const
{
    registry.counter("ras/overflows", ras_.overflows());
    registry.counter("ras/underflows", ras_.underflows());
    predictor.snapshotProbes(registry);
}

void
ReplaySession::saveState(util::StateWriter &writer) const
{
    metrics_.saveState(writer);
    ras_.saveState(writer);
}

void
ReplaySession::loadState(util::StateReader &reader)
{
    metrics_.loadState(reader);
    ras_.loadState(reader);
}

void
ReplaySession::saveProbes(util::StateWriter &writer) const
{
    ras_.saveProbes(writer);
}

void
ReplaySession::loadProbes(util::StateReader &reader)
{
    ras_.loadProbes(reader);
}

} // namespace ibp::sim
