#include "sim/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ibp::sim {

namespace {

void
writeHeader(util::StateWriter &writer, std::string_view kind)
{
    writer.writeU32(kCheckpointMagic);
    writer.writeU16(kCheckpointVersion);
    writer.writeString(kind);
}

util::Status
readHeader(util::StateReader &reader, std::string &kind)
{
    const std::uint32_t magic = reader.readU32();
    if (!reader.ok())
        return reader.status();
    if (magic != kCheckpointMagic)
        return util::Status::Error(
            "not a checkpoint file (bad magic)");
    const std::uint16_t version = reader.readU16();
    if (reader.ok() && version > kCheckpointVersion)
        return util::Status::Error(
            "checkpoint format version " + std::to_string(version) +
            " is newer than this reader (" +
            std::to_string(kCheckpointVersion) + ")");
    kind = reader.readString();
    return reader.status();
}

void
writeMetaSection(util::StateWriter &writer, const CheckpointMeta &meta)
{
    writer.beginSection("meta");
    writer.writeString(meta.predictor);
    writer.writeString(meta.profile);
    writer.writeString(meta.fingerprint);
    writer.writeU64(meta.cursor);
    writer.endSection();
}

void
readMetaSection(util::StateReader &payload, CheckpointMeta &meta)
{
    meta.predictor = payload.readString();
    meta.profile = payload.readString();
    meta.fingerprint = payload.readString();
    meta.cursor = payload.readU64();
}

/** Byte blob as a string field (varint length + raw bytes). */
void
writeBlob(util::StateWriter &writer, std::string_view blob)
{
    writer.writeString(blob);
}

std::string
writerString(const util::StateWriter &writer)
{
    return std::string(
        reinterpret_cast<const char *>(writer.bytes().data()),
        writer.size());
}

/**
 * Finish decoding one architectural sub-payload: the writer and reader
 * must agree byte for byte, so both an error and leftover bytes mean
 * the blob does not belong to this configuration.
 */
util::Status
closePayload(const util::StateReader &payload, const char *what)
{
    if (!payload.ok())
        return util::Status::Error(std::string(what) + " section: " +
                                   payload.status().message());
    if (!payload.atEnd())
        return util::Status::Error(
            std::string(what) +
            " section has trailing bytes (configuration mismatch?)");
    return util::Status::Ok();
}

} // namespace

std::vector<std::uint8_t>
encodeSimCheckpoint(const CheckpointMeta &meta,
                    const pred::IndirectPredictor &predictor,
                    const ReplaySession &session,
                    const workload::Program *walker)
{
    util::StateWriter writer;
    writeHeader(writer, kCheckpointKindSim);
    writeMetaSection(writer, meta);

    writer.beginSection("predictor");
    predictor.saveState(writer);
    writer.endSection();

    writer.beginSection("engine");
    session.saveState(writer);
    writer.endSection();

    writer.beginSection("probes");
    predictor.saveProbes(writer);
    session.saveProbes(writer);
    writer.endSection();

    if (walker) {
        writer.beginSection("walker");
        walker->saveState(writer);
        writer.endSection();
    }
    return writer.bytes();
}

util::Status
decodeSimCheckpointMeta(const std::uint8_t *data, std::size_t size,
                        CheckpointMeta &meta)
{
    util::StateReader reader(data, size);
    std::string kind;
    if (util::Status status = readHeader(reader, kind); !status.ok())
        return status;
    if (kind != kCheckpointKindSim)
        return util::Status::Error("not a simulation checkpoint (kind \"" +
                                   kind + "\")");
    std::string name;
    util::StateReader payload;
    while (reader.nextSection(name, payload)) {
        if (name != "meta")
            continue;
        readMetaSection(payload, meta);
        if (!payload.ok())
            return payload.status();
        return util::Status::Ok();
    }
    if (!reader.ok())
        return reader.status();
    return util::Status::Error("checkpoint has no meta section");
}

util::Status
restoreSimCheckpoint(const std::vector<std::uint8_t> &bytes,
                     CheckpointMeta &meta,
                     pred::IndirectPredictor &predictor,
                     ReplaySession &session, workload::Program *walker)
{
    util::StateReader reader(bytes);
    std::string kind;
    if (util::Status status = readHeader(reader, kind); !status.ok())
        return status;
    if (kind != kCheckpointKindSim)
        return util::Status::Error("not a simulation checkpoint (kind \"" +
                                   kind + "\")");

    bool saw_meta = false;
    bool saw_predictor = false;
    bool saw_engine = false;
    bool saw_probes = false;
    std::string name;
    util::StateReader payload;
    while (reader.nextSection(name, payload)) {
        if (name == "meta") {
            readMetaSection(payload, meta);
            saw_meta = true;
            if (util::Status status = closePayload(payload, "meta");
                !status.ok())
                return status;
        } else if (name == "predictor") {
            predictor.loadState(payload);
            saw_predictor = true;
            if (util::Status status = closePayload(payload, "predictor");
                !status.ok())
                return status;
        } else if (name == "engine") {
            session.loadState(payload);
            saw_engine = true;
            if (util::Status status = closePayload(payload, "engine");
                !status.ok())
                return status;
        } else if (name == "probes") {
            predictor.loadProbes(payload);
            session.loadProbes(payload);
            saw_probes = true;
            if (util::Status status = closePayload(payload, "probes");
                !status.ok())
                return status;
        } else if (name == "walker" && walker) {
            walker->loadState(payload);
            if (util::Status status = closePayload(payload, "walker");
                !status.ok())
                return status;
        }
        // Unknown sections (and a walker nobody asked for) skip
        // wholesale — that is what the length-prefixed framing buys.
    }
    if (!reader.ok())
        return reader.status();
    if (!saw_meta || !saw_predictor || !saw_engine || !saw_probes)
        return util::Status::Error(
            "checkpoint is missing a required section");
    return util::Status::Ok();
}

PartialCell
capturePartialCell(std::string row, std::string col,
                   std::uint64_t cursor,
                   const pred::IndirectPredictor &predictor,
                   const ReplaySession &session)
{
    PartialCell partial;
    partial.valid = true;
    partial.row = std::move(row);
    partial.col = std::move(col);
    partial.cursor = cursor;

    util::StateWriter predictor_writer;
    predictor.saveState(predictor_writer);
    partial.predictorState = writerString(predictor_writer);

    util::StateWriter engine_writer;
    session.saveState(engine_writer);
    partial.engineState = writerString(engine_writer);

    util::StateWriter probe_writer;
    predictor.saveProbes(probe_writer);
    session.saveProbes(probe_writer);
    partial.probeState = writerString(probe_writer);
    return partial;
}

bool
restorePartialCell(const PartialCell &partial,
                   pred::IndirectPredictor &predictor,
                   ReplaySession &session)
{
    if (!partial.valid)
        return false;
    const auto restore = [](const std::string &blob, auto &&load) {
        util::StateReader reader(
            reinterpret_cast<const std::uint8_t *>(blob.data()),
            blob.size());
        load(reader);
        return reader.ok() && reader.atEnd();
    };
    if (!restore(partial.predictorState, [&](util::StateReader &r) {
            predictor.loadState(r);
        }))
        return false;
    if (!restore(partial.engineState, [&](util::StateReader &r) {
            session.loadState(r);
        }))
        return false;
    return restore(partial.probeState, [&](util::StateReader &r) {
        predictor.loadProbes(r);
        session.loadProbes(r);
    });
}

const CompletedCell *
SuiteProgress::find(const std::string &row, const std::string &col) const
{
    for (const auto &cell : cells)
        if (cell.row == row && cell.col == col)
            return &cell;
    return nullptr;
}

std::string
suiteFingerprint(const std::vector<workload::BenchmarkProfile> &profiles,
                 const std::vector<std::string> &predictor_names,
                 const SuiteOptions &options)
{
    // %a round-trips doubles exactly, so nearby scales never alias.
    char scale[32];
    char size[32];
    std::snprintf(scale, sizeof(scale), "%a", options.traceScale);
    std::snprintf(size, sizeof(size), "%a", options.factory.sizeScale);
    std::ostringstream out;
    out << "v" << kCheckpointVersion << "|scale=" << scale
        << "|size=" << size << "|ras=" << (options.engine.useRas ? 1 : 0)
        << ":" << options.engine.rasDepth
        << "|persite=" << (options.engine.perSiteStats ? 1 : 0)
        << "|timeline=" << options.engine.timeline.interval << ":"
        << (options.engine.timeline.sampleProbes ? 1 : 0);
    for (const auto &profile : profiles)
        out << "|row=" << profile.fullName() << ":"
            << profile.program.seed << ":" << profile.records;
    for (const auto &name : predictor_names)
        out << "|col=" << name;
    return out.str();
}

std::vector<std::uint8_t>
encodeSuiteProgress(const SuiteProgress &progress)
{
    util::StateWriter writer;
    writeHeader(writer, kCheckpointKindSuite);

    writer.beginSection("meta");
    writer.writeString(progress.fingerprint);
    writer.endSection();

    for (const auto &cell : progress.cells) {
        writer.beginSection("cell");
        writer.writeString(cell.row);
        writer.writeString(cell.col);
        writer.writeDouble(cell.cell.missPercent);
        writer.writeDouble(cell.cell.noPredictionPercent);
        writer.writeU64(cell.cell.predictions);
        writer.writeDouble(cell.cell.wallSeconds);
        writer.writeDouble(cell.cell.cpuSeconds);
        cell.probes.saveState(writer);
        cell.timeline.saveState(writer);
        writer.endSection();
    }

    if (progress.partial.valid) {
        writer.beginSection("partial");
        writer.writeString(progress.partial.row);
        writer.writeString(progress.partial.col);
        writer.writeU64(progress.partial.cursor);
        writeBlob(writer, progress.partial.predictorState);
        writeBlob(writer, progress.partial.engineState);
        writeBlob(writer, progress.partial.probeState);
        writer.endSection();
    }
    return writer.bytes();
}

util::Status
decodeSuiteProgress(const std::vector<std::uint8_t> &bytes,
                    SuiteProgress &progress)
{
    progress = SuiteProgress{};
    util::StateReader reader(bytes);
    std::string kind;
    if (util::Status status = readHeader(reader, kind); !status.ok())
        return status;
    if (kind != kCheckpointKindSuite)
        return util::Status::Error("not a suite progress file (kind \"" +
                                   kind + "\")");

    bool saw_meta = false;
    std::string name;
    util::StateReader payload;
    while (reader.nextSection(name, payload)) {
        if (name == "meta") {
            progress.fingerprint = payload.readString();
            saw_meta = true;
            if (util::Status status = closePayload(payload, "meta");
                !status.ok())
                return status;
        } else if (name == "cell") {
            CompletedCell cell;
            cell.row = payload.readString();
            cell.col = payload.readString();
            cell.cell.missPercent = payload.readDouble();
            cell.cell.noPredictionPercent = payload.readDouble();
            cell.cell.predictions = payload.readU64();
            cell.cell.wallSeconds = payload.readDouble();
            cell.cell.cpuSeconds = payload.readDouble();
            cell.probes.loadState(payload);
            cell.timeline.loadState(payload);
            if (util::Status status = closePayload(payload, "cell");
                !status.ok())
                return status;
            progress.cells.push_back(std::move(cell));
        } else if (name == "partial") {
            progress.partial.row = payload.readString();
            progress.partial.col = payload.readString();
            progress.partial.cursor = payload.readU64();
            progress.partial.predictorState = payload.readString();
            progress.partial.engineState = payload.readString();
            progress.partial.probeState = payload.readString();
            if (util::Status status = closePayload(payload, "partial");
                !status.ok())
                return status;
            progress.partial.valid = true;
        }
    }
    if (!reader.ok())
        return reader.status();
    if (!saw_meta)
        return util::Status::Error(
            "suite progress file has no meta section");
    return util::Status::Ok();
}

util::Status
checkpointKind(const std::vector<std::uint8_t> &bytes, std::string &kind)
{
    util::StateReader reader(bytes);
    return readHeader(reader, kind);
}

util::Status
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return util::Status::Error("cannot open " + tmp +
                                       " for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return util::Status::Error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return util::Status::Error("cannot rename " + tmp + " over " +
                                   path);
    }
    return util::Status::Ok();
}

util::Status
readCheckpointFile(const std::string &path,
                   std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return util::Status::Error("cannot open " + path);
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0)
        return util::Status::Error("cannot size " + path);
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (in.gcount() != size)
        return util::Status::Error("short read from " + path);
    return util::Status::Ok();
}

void
embedCheckpoint(trace::TraceWriter &writer,
                const std::vector<std::uint8_t> &bytes)
{
    writer.writeChunk(
        trace::kChunkCheckpoint,
        std::string_view(reinterpret_cast<const char *>(bytes.data()),
                         bytes.size()));
}

} // namespace ibp::sim
