/**
 * @file
 * Hardware-budget accounting.
 *
 * The paper's comparison holds the entry count constant (2K) across
 * predictors; this module makes the resulting bit budgets explicit so
 * the "approximately the same hardware budget" claim can be audited
 * per configuration.
 */

#ifndef IBP_SIM_BUDGET_HH_
#define IBP_SIM_BUDGET_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/factory.hh"

namespace ibp::sim {

/** One predictor's storage footprint. */
struct BudgetRow
{
    std::string name;
    std::uint64_t bits = 0;

    double kib() const { return static_cast<double>(bits) / 8192.0; }
};

/** Footprints for a list of predictor names (factory configs). */
std::vector<BudgetRow> budgetTable(const std::vector<std::string> &names,
                                   const FactoryOptions &options = {});

/** Render the table ("name  bits  KiB") to a stream. */
void printBudgetTable(std::ostream &out,
                      const std::vector<BudgetRow> &rows);

} // namespace ibp::sim

#endif // IBP_SIM_BUDGET_HH_
