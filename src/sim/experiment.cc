#include "sim/experiment.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <iomanip>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "obs/cputime.hh"
#include "obs/trace_event.hh"
#include "workload/program.hh"
#include "sim/checkpoint.hh"

namespace ibp::sim {

namespace {

/** Seconds elapsed since a wallSeconds() reading. */
double
secondsSince(double start)
{
    return obs::wallSeconds() - start;
}

/**
 * The generateTraceCached() store.  Each entry is a shared_future so
 * concurrent requests for the same key rendezvous on one generation:
 * the first requester installs the entry and generates outside the
 * lock while everyone else blocks on the future.
 */
class TraceCache
{
  public:
    using Buffer = std::shared_ptr<const trace::PackedTraceBuffer>;

    Buffer
    get(const workload::BenchmarkProfile &profile, double trace_scale,
        double *generation_seconds)
    {
        if (generation_seconds)
            *generation_seconds = 0;
        const std::string key = keyFor(profile, trace_scale);

        std::promise<Buffer> promise;
        std::shared_future<Buffer> future;
        bool generate = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end()) {
                ++hits_;
                it->second.lastUse = ++tick_;
                future = it->second.buffer;
            } else {
                ++misses_;
                generate = true;
                future = promise.get_future().share();
                evictLocked(capacity_ > 0 ? capacity_ - 1 : 0);
                entries_[key] = Entry{future, ++tick_};
            }
        }

        if (!generate)
            return future.get();

        const double start = obs::wallSeconds();
        try {
            // Generate unpacked, then pack for residency: the cache
            // holds (and every replaying cell streams) 16-byte
            // records; the 24-byte staging buffer dies right here.
            auto buffer =
                std::make_shared<const trace::PackedTraceBuffer>(
                    generateTrace(profile, trace_scale));
            if (generation_seconds)
                *generation_seconds = secondsSince(start);
            promise.set_value(std::move(buffer));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
        }
        return future.get();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    void
    setCapacity(std::size_t max_entries)
    {
        fatal_if(max_entries == 0,
                 "trace cache capacity must be at least 1");
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = max_entries;
        evictLocked(capacity_);
    }

    std::uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }

    std::uint64_t
    misses() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return misses_;
    }

  private:
    struct Entry
    {
        std::shared_future<Buffer> buffer;
        std::uint64_t lastUse = 0;
    };

    static std::string
    keyFor(const workload::BenchmarkProfile &profile, double trace_scale)
    {
        // %a round-trips the scale exactly; nearby scales never alias.
        char scale_text[32];
        std::snprintf(scale_text, sizeof(scale_text), "%a", trace_scale);
        std::ostringstream key;
        key << profile.fullName() << '|' << profile.program.seed << '|'
            << profile.records << '|' << scale_text;
        return key.str();
    }

    /** Drop ready LRU entries until at most @p keep remain. */
    // ibp-lint: requires_lock(mutex_)
    void
    evictLocked(std::size_t keep)
    {
        while (entries_.size() > keep) {
            auto victim = entries_.end();
            for (auto it = entries_.begin(); it != entries_.end(); ++it) {
                if (it->second.buffer.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                    continue; // never drop an in-flight generation
                if (victim == entries_.end() ||
                    it->second.lastUse < victim->second.lastUse)
                    victim = it;
            }
            if (victim == entries_.end())
                return;
            entries_.erase(victim);
        }
    }

    mutable std::mutex mutex_;
    // ibp-lint: guarded_by(mutex_)
    std::map<std::string, Entry> entries_;
    std::size_t capacity_ = 8; // ibp-lint: guarded_by(mutex_)
    std::uint64_t tick_ = 0;   // ibp-lint: guarded_by(mutex_)
    /** Requests satisfied by residency.  ibp-lint: guarded_by(mutex_) */
    std::uint64_t hits_ = 0;
    /** Requests that generated.  ibp-lint: guarded_by(mutex_) */
    std::uint64_t misses_ = 0;
};

TraceCache &
traceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace

std::vector<double>
SuiteResult::averages() const
{
    std::vector<double> avg(predictorNames.size(), 0.0);
    if (cells.empty())
        return avg;
    for (const auto &row : cells)
        for (std::size_t c = 0; c < row.size(); ++c)
            avg[c] += row[c].missPercent;
    for (auto &a : avg)
        a /= static_cast<double>(cells.size());
    return avg;
}

const CellResult &
SuiteResult::cell(const std::string &row, const std::string &col) const
{
    for (std::size_t r = 0; r < rowNames.size(); ++r) {
        if (rowNames[r] != row)
            continue;
        for (std::size_t c = 0; c < predictorNames.size(); ++c)
            if (predictorNames[c] == col)
                return cells[r][c];
    }
    fatal("no suite cell (", row, ", ", col, ")");
}

trace::TraceBuffer
generateTrace(const workload::BenchmarkProfile &profile,
              double trace_scale)
{
    fatal_if(trace_scale <= 0, "trace scale must be positive");
    workload::Program program = workload::synthesize(profile.program);
    const auto records = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(profile.records) * trace_scale));
    return program.collect(records);
}

std::shared_ptr<const trace::PackedTraceBuffer>
generateTraceCached(const workload::BenchmarkProfile &profile,
                    double trace_scale, double *generation_seconds)
{
    return traceCache().get(profile, trace_scale, generation_seconds);
}

void
clearTraceCache()
{
    traceCache().clear();
}

std::size_t
traceCacheSize()
{
    return traceCache().size();
}

void
setTraceCacheCapacity(std::size_t max_entries)
{
    traceCache().setCapacity(max_entries);
}

std::uint64_t
traceCacheHits()
{
    return traceCache().hits();
}

std::uint64_t
traceCacheMisses()
{
    return traceCache().misses();
}

RunMetrics
runOne(const workload::BenchmarkProfile &profile,
       const std::string &predictor_name, const SuiteOptions &options)
{
    trace::TraceBuffer buffer =
        generateTrace(profile, options.traceScale);
    auto predictor = makePredictor(predictor_name, options.factory);
    Engine engine(options.engine);
    return engine.run(buffer, *predictor);
}

namespace {

CellResult
cellFromMetrics(const RunMetrics &metrics)
{
    CellResult cell;
    cell.missPercent = metrics.missPercent();
    cell.noPredictionPercent = metrics.noPrediction.percent();
    cell.predictions = metrics.mtIndirect;
    return cell;
}

/**
 * Load an existing progress file if resuming.  A missing file is a
 * normal first run (quiet); a corrupt file or one written by a
 * different suite configuration is downgraded to a warn() and a fresh
 * run — a stale checkpoint must never change what gets computed.
 */
void
loadSuiteProgressFor(const SuiteOptions &options,
                     SuiteProgress &progress)
{
    if (!options.resume)
        return;
    std::vector<std::uint8_t> bytes;
    if (!readCheckpointFile(options.checkpointPath, bytes).ok())
        return; // nothing to resume from
    SuiteProgress loaded;
    if (util::Status status = decodeSuiteProgress(bytes, loaded);
        !status.ok()) {
        warn("ignoring checkpoint ", options.checkpointPath, ": ",
             status.message());
        return;
    }
    if (loaded.fingerprint != progress.fingerprint) {
        warn("checkpoint ", options.checkpointPath,
             " was written by a different suite configuration; "
             "starting fresh");
        return;
    }
    progress = std::move(loaded);
}

/** Persist the progress file; failures warn but never stop the run. */
void
writeSuiteProgress(const SuiteOptions &options,
                   const SuiteProgress &progress)
{
    if (util::Status status = writeCheckpointFile(
            options.checkpointPath, encodeSuiteProgress(progress));
        !status.ok())
        warn("checkpoint write failed: ", status.message());
}

/**
 * Records per one-pass chunk.  Small enough that a chunk (96 KiB of
 * 24-byte records) stays cache-resident while every predictor column
 * consumes it; any size produces the same matrix (span-size
 * invariance of the replay loop).
 */
constexpr std::size_t kOnePassChunk = 4096;

/** Per-column state for a one-pass row: a factory-fresh predictor,
 *  its span driver, and this cell's accumulated replay time. */
struct OnePassColumn
{
    std::unique_ptr<pred::IndirectPredictor> predictor;
    std::unique_ptr<SpanDriver> driver;
    double wallSeconds = 0;
    double cpuSeconds = 0;
};

std::vector<OnePassColumn>
makeOnePassColumns(const std::vector<std::string> &predictor_names,
                   const SuiteOptions &options)
{
    std::vector<OnePassColumn> columns(predictor_names.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        columns[c].predictor =
            makePredictor(predictor_names[c], options.factory);
        columns[c].driver = std::make_unique<SpanDriver>(
            options.engine, *columns[c].predictor);
    }
    return columns;
}

/** Feed one decoded chunk to every column, timing each feed. */
void
feedOnePassChunk(std::vector<OnePassColumn> &columns,
                 const trace::BranchRecord *chunk, std::size_t n)
{
    for (auto &column : columns) {
        const double wall_start = obs::wallSeconds();
        const double cpu_start = obs::threadCpuSeconds();
        column.driver->feed(chunk, n);
        column.cpuSeconds += obs::threadCpuSeconds() - cpu_start;
        column.wallSeconds += secondsSince(wall_start);
    }
}

/** Harvest a finished one-pass row into cells + probes + timelines. */
std::vector<CellResult>
harvestOnePassRow(std::vector<OnePassColumn> &columns,
                  const std::vector<std::string> &predictor_names,
                  const std::string &row_name, SuiteResult &result)
{
    std::vector<CellResult> row;
    row.reserve(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        columns[c].driver->finishTimeline();
        obs::ProbeRegistry probes;
        columns[c].driver->snapshotProbes(probes);
        CellResult cell = cellFromMetrics(columns[c].driver->metrics());
        cell.wallSeconds = columns[c].wallSeconds;
        cell.cpuSeconds = columns[c].cpuSeconds;
        result.probes[predictor_names[c]].merge(probes);
        row.push_back(cell);
        if (obs::Timeline timeline = columns[c].driver->takeTimeline();
            timeline.interval() > 0)
            result.timelines[row_name][predictor_names[c]] =
                std::move(timeline);
    }
    return row;
}

/**
 * The serial one-pass path: one trace per row, decoded once, all
 * predictor columns fed from the shared records chunk by chunk.
 */
SuiteResult
runSuiteOnePassSerial(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<std::string> &predictor_names,
    const SuiteOptions &options, SuiteTiming *timing)
{
    const double wall_start = obs::wallSeconds();
    double trace_gen = 0;
    SuiteResult result;
    result.predictorNames = predictor_names;

    for (const auto &profile : profiles) {
        const std::string row_name = profile.fullName();
        result.rowNames.push_back(row_name);

        const double gen_start = obs::wallSeconds();
        trace::TraceBuffer buffer;
        {
            obs::ScopedTraceSpan gen_span("tracegen " + row_name,
                                          "tracegen");
            buffer = generateTrace(profile, options.traceScale);
        }
        trace_gen += secondsSince(gen_start);

        obs::ScopedTraceSpan row_span(row_name + " / one-pass row",
                                      "cell");
        auto columns = makeOnePassColumns(predictor_names, options);
        buffer.rewind();
        const trace::BranchRecord *span = nullptr;
        std::size_t n = 0;
        while ((n = buffer.nextSpan(span)) != 0) {
            for (std::size_t off = 0; off < n; off += kOnePassChunk) {
                const std::size_t len =
                    std::min(kOnePassChunk, n - off);
                feedOnePassChunk(columns, span + off, len);
            }
        }
        result.cells.push_back(harvestOnePassRow(
            columns, predictor_names, row_name, result));
    }
    if (timing) {
        timing->wallSeconds = secondsSince(wall_start);
        timing->serialEquivalentSeconds = timing->wallSeconds;
        timing->traceGenSeconds = trace_gen;
        timing->threadsUsed = 1;
    }
    return result;
}

/** The legacy serial path: one trace per row, one cell at a time. */
SuiteResult
runSuiteSerial(const std::vector<workload::BenchmarkProfile> &profiles,
               const std::vector<std::string> &predictor_names,
               const SuiteOptions &options, SuiteTiming *timing)
{
    if (options.onePass) {
        if (options.checkpointPath.empty())
            return runSuiteOnePassSerial(profiles, predictor_names,
                                         options, timing);
        warn("one-pass suite mode does not support checkpointing; "
             "using the per-cell path");
    }

    const double wall_start = obs::wallSeconds();
    double trace_gen = 0;
    SuiteResult result;
    result.predictorNames = predictor_names;

    const bool checkpointing = !options.checkpointPath.empty();
    SuiteProgress progress;
    if (checkpointing) {
        progress.fingerprint =
            suiteFingerprint(profiles, predictor_names, options);
        loadSuiteProgressFor(options, progress);
    }

    for (const auto &profile : profiles) {
        const std::string row_name = profile.fullName();
        result.rowNames.push_back(row_name);

        // A fully resumed row needs no trace at all.
        bool row_needs_trace = !checkpointing;
        for (const auto &name : predictor_names)
            if (!row_needs_trace && !progress.find(row_name, name))
                row_needs_trace = true;

        trace::TraceBuffer buffer;
        if (row_needs_trace) {
            obs::ScopedTraceSpan gen_span("tracegen " + row_name,
                                          "tracegen");
            const double gen_start = obs::wallSeconds();
            buffer = generateTrace(profile, options.traceScale);
            trace_gen += secondsSince(gen_start);
        }

        std::vector<CellResult> row;
        row.reserve(predictor_names.size());
        for (const auto &name : predictor_names) {
            if (checkpointing) {
                if (const CompletedCell *done =
                        progress.find(row_name, name)) {
                    result.probes[name].merge(done->probes);
                    row.push_back(done->cell);
                    if (done->timeline.interval() > 0)
                        result.timelines[row_name][name] =
                            done->timeline;
                    continue;
                }
            }
            obs::ScopedTraceSpan cell_span(row_name + " / " + name,
                                           "cell");
            auto predictor = makePredictor(name, options.factory);
            ReplaySession session(options.engine);
            buffer.rewind();
            const double cell_start = obs::wallSeconds();
            const double cpu_start = obs::threadCpuSeconds();

            if (progress.partial.valid &&
                progress.partial.row == row_name &&
                progress.partial.col == name) {
                const std::uint64_t cursor = progress.partial.cursor;
                if (restorePartialCell(progress.partial, *predictor,
                                       session) &&
                    buffer.seek(cursor)) {
                    // Mid-replay resume: the prefix was consumed by
                    // the interrupted run; its effects live in the
                    // restored predictor/engine state.
                } else {
                    warn("mid-cell checkpoint for (", row_name, ", ",
                         name, ") is unusable; replaying the cell "
                         "from the start");
                    predictor = makePredictor(name, options.factory);
                    session = ReplaySession(options.engine);
                    buffer.rewind();
                }
                progress.partial = PartialCell{};
            }

            if (checkpointing && options.checkpointEvery > 0) {
                for (;;) {
                    const std::uint64_t ran = session.run(
                        buffer, *predictor, options.checkpointEvery);
                    if (ran < options.checkpointEvery)
                        break;
                    progress.partial = capturePartialCell(
                        row_name, name, buffer.cursor(), *predictor,
                        session);
                    writeSuiteProgress(options, progress);
                }
            } else {
                session.run(buffer, *predictor);
            }

            obs::ProbeRegistry probes;
            session.snapshotProbes(probes, *predictor);
            CellResult cell = cellFromMetrics(session.metrics());
            cell.cpuSeconds = obs::threadCpuSeconds() - cpu_start;
            cell.wallSeconds = secondsSince(cell_start);
            result.probes[name].merge(probes);
            row.push_back(cell);
            obs::Timeline cell_timeline = session.takeTimeline();
            if (checkpointing) {
                progress.partial = PartialCell{};
                CompletedCell done;
                done.row = row_name;
                done.col = name;
                done.cell = cell;
                done.probes = std::move(probes);
                done.timeline = cell_timeline;
                progress.cells.push_back(std::move(done));
                writeSuiteProgress(options, progress);
            }
            if (cell_timeline.interval() > 0)
                result.timelines[row_name][name] =
                    std::move(cell_timeline);
        }
        result.cells.push_back(std::move(row));
    }
    if (timing) {
        timing->wallSeconds = secondsSince(wall_start);
        timing->serialEquivalentSeconds = timing->wallSeconds;
        timing->traceGenSeconds = trace_gen;
        timing->threadsUsed = 1;
    }
    return result;
}

/**
 * The parallel one-pass path: one task per benchmark row.  Each task
 * decodes the row's memoized packed trace once — chunk by chunk into a
 * stack ring — and feeds every predictor column from the shared
 * decode, so the per-cell decode cost of the cell-sharded path is paid
 * once per row.  Rows are independent (own predictors, own cursor, own
 * drivers), so the matrix stays bitwise invariant to scheduling and
 * thread count; results and probes are collected in row order off
 * futures, giving the same merge order as the serial paths.
 */
SuiteResult
runSuiteOnePassParallel(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<std::string> &predictor_names,
    const SuiteOptions &options, SuiteTiming *timing,
    unsigned threads)
{
    SuiteResult result;
    result.predictorNames = predictor_names;
    result.rowNames.reserve(profiles.size());
    for (const auto &profile : profiles)
        result.rowNames.push_back(profile.fullName());

    struct RowOutput
    {
        std::vector<CellResult> cells;
        std::vector<obs::ProbeRegistry> probes;
        std::vector<obs::Timeline> timelines; ///< per column
        double genSeconds = 0;
        double cpuSeconds = 0; ///< whole task: gen + decode + replay
    };

    const double wall_start = obs::wallSeconds();
    std::vector<std::future<RowOutput>> futures;
    futures.reserve(profiles.size());
    {
        util::ThreadPool pool(threads);
        for (std::size_t r = 0; r < profiles.size(); ++r) {
            futures.push_back(pool.submit([&profiles,
                                           &predictor_names, &options,
                                           r] {
                const double cpu_start = obs::threadCpuSeconds();
                obs::ScopedTraceSpan row_span(
                    profiles[r].fullName() + " / one-pass row",
                    "cell");
                RowOutput output;
                const auto buffer = generateTraceCached(
                    profiles[r], options.traceScale,
                    &output.genSeconds);
                trace::PackedReplaySource source(*buffer);
                auto columns =
                    makeOnePassColumns(predictor_names, options);
                std::vector<trace::BranchRecord> ring(kOnePassChunk);
                std::size_t n = 0;
                while ((n = source.nextBatch(ring.data(),
                                             ring.size())) != 0)
                    feedOnePassChunk(columns, ring.data(), n);
                output.probes.resize(columns.size());
                output.timelines.resize(columns.size());
                output.cells.reserve(columns.size());
                for (std::size_t c = 0; c < columns.size(); ++c) {
                    columns[c].driver->finishTimeline();
                    columns[c].driver->snapshotProbes(
                        output.probes[c]);
                    CellResult cell = cellFromMetrics(
                        columns[c].driver->metrics());
                    cell.wallSeconds = columns[c].wallSeconds;
                    cell.cpuSeconds = columns[c].cpuSeconds;
                    output.cells.push_back(cell);
                    output.timelines[c] =
                        columns[c].driver->takeTimeline();
                }
                output.cpuSeconds =
                    obs::threadCpuSeconds() - cpu_start;
                return output;
            }));
        }

        double serial_equivalent = 0;
        double trace_gen = 0;
        for (std::size_t r = 0; r < futures.size(); ++r) {
            RowOutput output = futures[r].get();
            for (std::size_t c = 0; c < predictor_names.size(); ++c) {
                result.probes[predictor_names[c]].merge(
                    output.probes[c]);
                if (output.timelines[c].interval() > 0)
                    result.timelines[result.rowNames[r]]
                                    [predictor_names[c]] =
                        std::move(output.timelines[c]);
            }
            result.cells.push_back(std::move(output.cells));
            serial_equivalent += output.cpuSeconds;
            trace_gen += output.genSeconds;
        }
        if (timing) {
            timing->serialEquivalentSeconds = serial_equivalent;
            timing->traceGenSeconds = trace_gen;
            timing->threadsUsed = pool.threadCount();
        }
    }
    if (timing)
        timing->wallSeconds = secondsSince(wall_start);
    return result;
}

} // namespace

SuiteResult
runSuite(const std::vector<workload::BenchmarkProfile> &profiles,
         const std::vector<std::string> &predictor_names,
         const SuiteOptions &options, SuiteTiming *timing)
{
    const unsigned resolved =
        util::ThreadPool::resolveThreads(options.threads);
    if (resolved <= 1)
        return runSuiteSerial(profiles, predictor_names, options,
                              timing);
    return runSuiteParallel(profiles, predictor_names, options, timing);
}

SuiteResult
runSuiteParallel(const std::vector<workload::BenchmarkProfile> &profiles,
                 const std::vector<std::string> &predictor_names,
                 const SuiteOptions &options, SuiteTiming *timing)
{
    const unsigned threads =
        util::ThreadPool::resolveThreads(options.threads);

    if (options.onePass) {
        if (options.checkpointPath.empty())
            return runSuiteOnePassParallel(profiles, predictor_names,
                                           options, timing, threads);
        warn("one-pass suite mode does not support checkpointing; "
             "using the per-cell path");
    }

    const std::size_t rows = profiles.size();
    const std::size_t cols = predictor_names.size();

    SuiteResult result;
    result.predictorNames = predictor_names;
    result.rowNames.reserve(rows);
    for (const auto &profile : profiles)
        result.rowNames.push_back(profile.fullName());
    result.cells.assign(rows, std::vector<CellResult>(cols));

    const bool checkpointing = !options.checkpointPath.empty();
    SuiteProgress progress;
    if (checkpointing) {
        progress.fingerprint =
            suiteFingerprint(profiles, predictor_names, options);
        loadSuiteProgressFor(options, progress);
        // Mid-cell snapshots are a serial-path feature; a resumed
        // partial cell is simply replayed whole here.
        progress.partial = PartialCell{};
    }

    // One task per (row, column) cell.  Every task replays an
    // immutable memoized trace through its own cursor into its own
    // factory-fresh predictor and engine, so cells are independent and
    // the matrix is bitwise invariant to scheduling order.
    struct CellOutput
    {
        CellResult cell;
        double genSeconds = 0;
        obs::ProbeRegistry probes;
        obs::Timeline timeline;
    };

    struct CellTask
    {
        std::size_t r;
        std::size_t c;
    };

    const double wall_start = obs::wallSeconds();
    std::vector<CellTask> tasks;
    std::vector<std::future<CellOutput>> futures;
    tasks.reserve(rows * cols);
    futures.reserve(rows * cols);
    {
        util::ThreadPool pool(threads);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                if (checkpointing) {
                    if (const CompletedCell *done = progress.find(
                            result.rowNames[r], predictor_names[c])) {
                        result.cells[r][c] = done->cell;
                        result.probes[predictor_names[c]].merge(
                            done->probes);
                        if (done->timeline.interval() > 0)
                            result.timelines[result.rowNames[r]]
                                            [predictor_names[c]] =
                                done->timeline;
                        continue;
                    }
                }
                tasks.push_back(CellTask{r, c});
                futures.push_back(pool.submit([&profiles,
                                               &predictor_names,
                                               &options, r, c] {
                    // Thread-CPU time covers this cell's simulation
                    // plus any trace generation it performed; cache
                    // waiters burn ~no CPU while blocked, so the sum
                    // over cells reconstructs the serial cost without
                    // double-counting or oversubscription inflation.
                    const double cell_start = obs::wallSeconds();
                    const double cpu_start = obs::threadCpuSeconds();
                    obs::ScopedTraceSpan cell_span(
                        profiles[r].fullName() + " / " +
                            predictor_names[c],
                        "cell");
                    CellOutput output;
                    const auto buffer = generateTraceCached(
                        profiles[r], options.traceScale,
                        &output.genSeconds);
                    trace::PackedReplaySource source(*buffer);
                    auto predictor = makePredictor(predictor_names[c],
                                                   options.factory);
                    Engine engine(options.engine);
                    output.cell = cellFromMetrics(
                        engine.run(source, *predictor, &output.probes,
                                   &output.timeline));
                    output.cell.cpuSeconds =
                        obs::threadCpuSeconds() - cpu_start;
                    output.cell.wallSeconds = secondsSince(cell_start);
                    return output;
                }));
            }
        }

        double serial_equivalent = 0;
        double trace_gen = 0;
        // Futures resolve in submission order; completed-cell probes
        // merged above and these merge by summation, so the final
        // registries are independent of which cells were resumed.
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            CellOutput output = futures[i].get();
            const auto [r, c] = tasks[i];
            result.cells[r][c] = output.cell;
            result.probes[predictor_names[c]].merge(output.probes);
            serial_equivalent += output.cell.cpuSeconds;
            trace_gen += output.genSeconds;
            if (checkpointing) {
                CompletedCell done;
                done.row = result.rowNames[r];
                done.col = predictor_names[c];
                done.cell = output.cell;
                done.probes = std::move(output.probes);
                done.timeline = output.timeline;
                progress.cells.push_back(std::move(done));
                writeSuiteProgress(options, progress);
            }
            if (output.timeline.interval() > 0)
                result.timelines[result.rowNames[r]]
                                [predictor_names[c]] =
                    std::move(output.timeline);
        }
        if (timing) {
            timing->serialEquivalentSeconds = serial_equivalent;
            timing->traceGenSeconds = trace_gen;
            timing->threadsUsed = pool.threadCount();
        }
    }
    if (timing)
        timing->wallSeconds = secondsSince(wall_start);
    return result;
}

SeedSweepResult
runSeedSweep(const std::vector<workload::BenchmarkProfile> &profiles,
             const std::vector<std::string> &predictor_names,
             const SuiteOptions &options, unsigned num_seeds,
             SuiteTiming *timing)
{
    fatal_if(num_seeds == 0, "seed sweep needs at least one seed");
    SeedSweepResult sweep;
    sweep.predictorNames = predictor_names;
    if (timing)
        *timing = SuiteTiming{};

    for (unsigned s = 0; s < num_seeds; ++s) {
        std::vector<workload::BenchmarkProfile> reseeded = profiles;
        for (auto &profile : reseeded)
            profile.program.seed ^=
                0x9e3779b97f4a7c15ULL * (s + 1) >> 7;
        SuiteTiming seed_timing;
        const SuiteResult result = runSuite(
            reseeded, predictor_names, options, &seed_timing);
        sweep.perSeed.push_back(result.averages());
        if (timing) {
            timing->wallSeconds += seed_timing.wallSeconds;
            timing->serialEquivalentSeconds +=
                seed_timing.serialEquivalentSeconds;
            timing->traceGenSeconds += seed_timing.traceGenSeconds;
            timing->threadsUsed = seed_timing.threadsUsed;
        }
    }

    const auto cols = predictor_names.size();
    sweep.mean.assign(cols, 0.0);
    sweep.stddev.assign(cols, 0.0);
    for (const auto &row : sweep.perSeed)
        for (std::size_t c = 0; c < cols; ++c)
            sweep.mean[c] += row[c];
    for (auto &m : sweep.mean)
        m /= static_cast<double>(num_seeds);
    if (num_seeds > 1) {
        for (const auto &row : sweep.perSeed)
            for (std::size_t c = 0; c < cols; ++c) {
                const double d = row[c] - sweep.mean[c];
                sweep.stddev[c] += d * d;
            }
        for (auto &sd : sweep.stddev)
            sd = std::sqrt(sd / static_cast<double>(num_seeds - 1));
    }
    return sweep;
}

void
printSuiteTable(std::ostream &out, const SuiteResult &result,
                const SuiteTiming *timing)
{
    constexpr int kLabelWidth = 12;
    constexpr int kCellWidth = 10;

    out << std::left << std::setw(kLabelWidth) << "benchmark"
        << std::right;
    for (const auto &name : result.predictorNames)
        out << std::setw(kCellWidth)
            << (name.size() > std::size_t(kCellWidth - 1)
                    ? name.substr(0, kCellWidth - 1)
                    : name);
    out << '\n';

    for (std::size_t r = 0; r < result.rowNames.size(); ++r) {
        out << std::left << std::setw(kLabelWidth) << result.rowNames[r]
            << std::right << std::fixed << std::setprecision(2);
        for (const auto &cell : result.cells[r])
            out << std::setw(kCellWidth) << cell.missPercent;
        out << '\n';
    }

    out << std::left << std::setw(kLabelWidth) << "average"
        << std::right << std::fixed << std::setprecision(2);
    for (double avg : result.averages())
        out << std::setw(kCellWidth) << avg;
    out << '\n';

    if (timing)
        printSuiteTimingFooter(out, *timing);
}

void
printSuiteTimingFooter(std::ostream &out, const SuiteTiming &timing)
{
    out << std::fixed << std::setprecision(2);
    if (timing.threadsUsed <= 1) {
        out << "wall-clock  " << timing.wallSeconds
            << " s (serial path)\n";
        return;
    }
    out << "wall-clock  " << timing.wallSeconds << " s on "
        << timing.threadsUsed << " threads (serial-equivalent "
        << timing.serialEquivalentSeconds << " s, speedup "
        << std::setprecision(1) << timing.speedup() << "x)\n";
}

namespace {

/** The metadata shared by every report shape. */
obs::RunReport
reportSkeleton(const std::string &tool, const SuiteOptions &options,
               const SuiteTiming &timing)
{
    obs::RunReport report;
    report.tool = tool;
    report.build = obs::BuildInfo::current();
    report.traceScale = options.traceScale;
    report.threads = options.threads;
    report.wallSeconds = timing.wallSeconds;
    report.serialEquivalentSeconds = timing.serialEquivalentSeconds;
    report.traceGenSeconds = timing.traceGenSeconds;
    report.threadsUsed = timing.threadsUsed;

    obs::ProbeRegistry cache;
    cache.counter("hits", traceCacheHits());
    cache.counter("misses", traceCacheMisses());
    report.probes.emplace("trace_cache", std::move(cache));
    return report;
}

} // namespace

obs::RunReport
buildRunReport(const std::string &tool, const SuiteOptions &options,
               const SuiteResult &result, const SuiteTiming &timing)
{
    obs::RunReport report = reportSkeleton(tool, options, timing);
    report.hasSuite = true;
    report.predictors = result.predictorNames;
    report.rows = result.rowNames;
    for (std::size_t r = 0; r < result.rowNames.size(); ++r) {
        for (std::size_t c = 0; c < result.predictorNames.size();
             ++c) {
            const CellResult &src = result.cells[r][c];
            obs::ReportCell cell;
            cell.row = result.rowNames[r];
            cell.predictor = result.predictorNames[c];
            cell.missPercent = src.missPercent;
            cell.noPredictionPercent = src.noPredictionPercent;
            cell.predictions = src.predictions;
            cell.wallSeconds = src.wallSeconds;
            cell.cpuSeconds = src.cpuSeconds;
            report.cells.push_back(std::move(cell));
        }
    }
    for (const auto &[name, registry] : result.probes)
        report.probes[name].merge(registry);
    // Timelines in suite order (row-major), not map order, so the
    // report section is deterministic and path-independent.
    for (const auto &row : result.rowNames) {
        const auto row_it = result.timelines.find(row);
        if (row_it == result.timelines.end())
            continue;
        for (const auto &predictor : result.predictorNames) {
            const auto cell_it = row_it->second.find(predictor);
            if (cell_it == row_it->second.end())
                continue;
            obs::ReportTimeline entry;
            entry.row = row;
            entry.predictor = predictor;
            entry.timeline = cell_it->second;
            entry.segmentation =
                obs::segmentTimeline(entry.timeline);
            report.timelines.push_back(std::move(entry));
        }
    }
    return report;
}

obs::RunReport
buildSweepReport(const std::string &tool, const SuiteOptions &options,
                 const SeedSweepResult &sweep,
                 const SuiteTiming &timing)
{
    obs::RunReport report = reportSkeleton(tool, options, timing);
    report.hasSweep = true;
    for (std::size_t c = 0; c < sweep.predictorNames.size(); ++c) {
        obs::ReportSweepColumn column;
        column.predictor = sweep.predictorNames[c];
        column.mean = sweep.mean[c];
        column.stddev = sweep.stddev[c];
        report.sweep.push_back(std::move(column));
    }
    report.scalars["seeds"] =
        static_cast<double>(sweep.perSeed.size());
    return report;
}

double
paperAverageFor(const std::string &predictor)
{
    // Suite averages the paper states explicitly (Section 5): PPM-hyb
    // 9.47%, Cascade 11.48%, TC-PIB 13.0%.  The remaining predictors'
    // averages are only plotted, not printed, so no number is
    // reproduced for them.
    if (predictor == "PPM-hyb")
        return 9.47;
    if (predictor == "Cascade")
        return 11.48;
    if (predictor == "TC-PIB")
        return 13.0;
    return -1.0;
}

} // namespace ibp::sim
