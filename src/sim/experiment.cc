#include "sim/experiment.hh"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/logging.hh"
#include "workload/program.hh"

namespace ibp::sim {

std::vector<double>
SuiteResult::averages() const
{
    std::vector<double> avg(predictorNames.size(), 0.0);
    if (cells.empty())
        return avg;
    for (const auto &row : cells)
        for (std::size_t c = 0; c < row.size(); ++c)
            avg[c] += row[c].missPercent;
    for (auto &a : avg)
        a /= static_cast<double>(cells.size());
    return avg;
}

const CellResult &
SuiteResult::cell(const std::string &row, const std::string &col) const
{
    for (std::size_t r = 0; r < rowNames.size(); ++r) {
        if (rowNames[r] != row)
            continue;
        for (std::size_t c = 0; c < predictorNames.size(); ++c)
            if (predictorNames[c] == col)
                return cells[r][c];
    }
    fatal("no suite cell (", row, ", ", col, ")");
}

trace::TraceBuffer
generateTrace(const workload::BenchmarkProfile &profile,
              double trace_scale)
{
    fatal_if(trace_scale <= 0, "trace scale must be positive");
    workload::Program program = workload::synthesize(profile.program);
    const auto records = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(profile.records) * trace_scale));
    return program.collect(records);
}

RunMetrics
runOne(const workload::BenchmarkProfile &profile,
       const std::string &predictor_name, const SuiteOptions &options)
{
    trace::TraceBuffer buffer =
        generateTrace(profile, options.traceScale);
    auto predictor = makePredictor(predictor_name, options.factory);
    Engine engine(options.engine);
    return engine.run(buffer, *predictor);
}

SuiteResult
runSuite(const std::vector<workload::BenchmarkProfile> &profiles,
         const std::vector<std::string> &predictor_names,
         const SuiteOptions &options)
{
    SuiteResult result;
    result.predictorNames = predictor_names;
    for (const auto &profile : profiles) {
        result.rowNames.push_back(profile.fullName());
        trace::TraceBuffer buffer =
            generateTrace(profile, options.traceScale);

        std::vector<CellResult> row;
        row.reserve(predictor_names.size());
        for (const auto &name : predictor_names) {
            auto predictor = makePredictor(name, options.factory);
            Engine engine(options.engine);
            buffer.rewind();
            const RunMetrics metrics = engine.run(buffer, *predictor);
            CellResult cell;
            cell.missPercent = metrics.missPercent();
            cell.noPredictionPercent = metrics.noPrediction.percent();
            cell.predictions = metrics.mtIndirect;
            row.push_back(cell);
        }
        result.cells.push_back(std::move(row));
    }
    return result;
}

SeedSweepResult
runSeedSweep(const std::vector<workload::BenchmarkProfile> &profiles,
             const std::vector<std::string> &predictor_names,
             const SuiteOptions &options, unsigned num_seeds)
{
    fatal_if(num_seeds == 0, "seed sweep needs at least one seed");
    SeedSweepResult sweep;
    sweep.predictorNames = predictor_names;

    for (unsigned s = 0; s < num_seeds; ++s) {
        std::vector<workload::BenchmarkProfile> reseeded = profiles;
        for (auto &profile : reseeded)
            profile.program.seed ^=
                0x9e3779b97f4a7c15ULL * (s + 1) >> 7;
        const SuiteResult result =
            runSuite(reseeded, predictor_names, options);
        sweep.perSeed.push_back(result.averages());
    }

    const auto cols = predictor_names.size();
    sweep.mean.assign(cols, 0.0);
    sweep.stddev.assign(cols, 0.0);
    for (const auto &row : sweep.perSeed)
        for (std::size_t c = 0; c < cols; ++c)
            sweep.mean[c] += row[c];
    for (auto &m : sweep.mean)
        m /= static_cast<double>(num_seeds);
    if (num_seeds > 1) {
        for (const auto &row : sweep.perSeed)
            for (std::size_t c = 0; c < cols; ++c) {
                const double d = row[c] - sweep.mean[c];
                sweep.stddev[c] += d * d;
            }
        for (auto &sd : sweep.stddev)
            sd = std::sqrt(sd / static_cast<double>(num_seeds - 1));
    }
    return sweep;
}

void
printSuiteTable(std::ostream &out, const SuiteResult &result)
{
    constexpr int kLabelWidth = 12;
    constexpr int kCellWidth = 10;

    out << std::left << std::setw(kLabelWidth) << "benchmark"
        << std::right;
    for (const auto &name : result.predictorNames)
        out << std::setw(kCellWidth)
            << (name.size() > std::size_t(kCellWidth - 1)
                    ? name.substr(0, kCellWidth - 1)
                    : name);
    out << '\n';

    for (std::size_t r = 0; r < result.rowNames.size(); ++r) {
        out << std::left << std::setw(kLabelWidth) << result.rowNames[r]
            << std::right << std::fixed << std::setprecision(2);
        for (const auto &cell : result.cells[r])
            out << std::setw(kCellWidth) << cell.missPercent;
        out << '\n';
    }

    out << std::left << std::setw(kLabelWidth) << "average"
        << std::right << std::fixed << std::setprecision(2);
    for (double avg : result.averages())
        out << std::setw(kCellWidth) << avg;
    out << '\n';
}

double
paperAverageFor(const std::string &predictor)
{
    // Suite averages the paper states explicitly (Section 5): PPM-hyb
    // 9.47%, Cascade 11.48%, TC-PIB 13.0%.  The remaining predictors'
    // averages are only plotted, not printed, so no number is
    // reproduced for them.
    if (predictor == "PPM-hyb")
        return 9.47;
    if (predictor == "Cascade")
        return 11.48;
    if (predictor == "TC-PIB")
        return 13.0;
    return -1.0;
}

} // namespace ibp::sim
