#include "sim/budget.hh"

#include <iomanip>
#include <ostream>

namespace ibp::sim {

std::vector<BudgetRow>
budgetTable(const std::vector<std::string> &names,
            const FactoryOptions &options)
{
    std::vector<BudgetRow> rows;
    rows.reserve(names.size());
    for (const auto &name : names) {
        const auto predictor = makePredictor(name, options);
        rows.push_back({predictor->name(), predictor->storageBits()});
    }
    return rows;
}

void
printBudgetTable(std::ostream &out, const std::vector<BudgetRow> &rows)
{
    out << std::left << std::setw(18) << "predictor"
        << std::right << std::setw(12) << "bits"
        << std::setw(10) << "KiB" << '\n';
    for (const auto &row : rows) {
        out << std::left << std::setw(18) << row.name
            << std::right << std::setw(12) << row.bits
            << std::setw(10) << std::fixed << std::setprecision(1)
            << row.kib() << '\n';
    }
}

} // namespace ibp::sim
