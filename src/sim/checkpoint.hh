/**
 * @file
 * Checkpoint containers: whole-simulation snapshots and resumable
 * suite progress, in one versioned on-disk format ("IBPC").
 *
 * Two blob kinds share the header (magic, version, kind string):
 *
 *  - "sim": one full simulation snapshot — predictor tables, engine
 *    state (metrics + RAS), probe counters, replay cursor, and
 *    optionally the synthetic workload walker.  Restoring it into
 *    freshly built objects of the same configuration reproduces every
 *    future prediction bit-exactly (tests/test_checkpoint_equivalence
 *    is the proof).
 *
 *  - "suite": a suite runner's progress file — the fingerprint of the
 *    exact matrix being computed, every completed cell (results plus
 *    its probe registry), and at most one in-flight cell's mid-replay
 *    snapshot.  An interrupted bench run restarted with resume=true
 *    skips completed cells and continues the partial one, producing a
 *    report identical (up to timing) to an uninterrupted run.
 *
 * Checkpoint files are untrusted input: every decode path returns a
 * util::Status instead of crashing, and the suite runner downgrades a
 * corrupt or mismatched resume file to a warn() + fresh run.
 */

#ifndef IBP_SIM_CHECKPOINT_HH_
#define IBP_SIM_CHECKPOINT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/serde.hh"
#include "trace/trace_io.hh"
#include "obs/registry.hh"
#include "workload/profiles.hh"
#include "workload/program.hh"
#include "predictors/predictor.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"

namespace ibp::sim {

/** Magic number opening every checkpoint blob ("IBPC", little-endian). */
inline constexpr std::uint32_t kCheckpointMagic = 0x43504249;

/** Current checkpoint format version. */
inline constexpr std::uint16_t kCheckpointVersion = 1;

/** Blob kind strings stored right after the version. */
inline constexpr const char *kCheckpointKindSim = "sim";
inline constexpr const char *kCheckpointKindSuite = "suite";

/**
 * Identification carried by a "sim" snapshot so a restore can verify
 * it is feeding the bytes to compatibly configured objects before any
 * state is touched.
 */
struct CheckpointMeta
{
    std::string predictor;   ///< factory name ("PPM-hyb", ...)
    std::string profile;     ///< profile full name ("" when traceless)
    std::string fingerprint; ///< free-form configuration fingerprint
    std::uint64_t cursor = 0; ///< records consumed when snapshotted
};

/**
 * Encode one full simulation snapshot.  The probes section uses only
 * fixed-width writes (see IndirectPredictor::saveProbes), so the blob
 * layout — including every section length — is identical across
 * instrumented and probe-free builds.
 * @param walker when non-null, the synthetic workload walker's state
 *        is embedded too (for checkpointing generation mid-stream)
 */
std::vector<std::uint8_t>
encodeSimCheckpoint(const CheckpointMeta &meta,
                    const pred::IndirectPredictor &predictor,
                    const ReplaySession &session,
                    const workload::Program *walker = nullptr);

/**
 * Decode just the header and meta section of a "sim" blob (cheap;
 * nothing else is touched).  Callers check the meta against their own
 * configuration before committing to a full restore.
 */
util::Status decodeSimCheckpointMeta(const std::uint8_t *data,
                                     std::size_t size,
                                     CheckpointMeta &meta);

inline util::Status
decodeSimCheckpointMeta(const std::vector<std::uint8_t> &bytes,
                        CheckpointMeta &meta)
{
    return decodeSimCheckpointMeta(bytes.data(), bytes.size(), meta);
}

/**
 * Restore a "sim" snapshot into same-configured objects.  On error the
 * targets are partially written and must be discarded (rebuild from
 * the factory); on success every future prediction matches the
 * snapshotted run bit for bit.
 * @param walker must be non-null iff the blob has a walker section
 *        the caller wants restored; a present section with a null
 *        walker is skipped
 */
util::Status
restoreSimCheckpoint(const std::vector<std::uint8_t> &bytes,
                     CheckpointMeta &meta,
                     pred::IndirectPredictor &predictor,
                     ReplaySession &session,
                     workload::Program *walker = nullptr);

/** One finished (row, column) cell recorded in a suite progress file. */
struct CompletedCell
{
    std::string row; ///< benchmark full name
    std::string col; ///< predictor name
    CellResult cell;
    obs::ProbeRegistry probes;
    /** The cell's sampled timeline (empty when sampling was off), so
     *  a resumed run reproduces the uninterrupted run's timeline
     *  section byte for byte. */
    obs::Timeline timeline;
};

/**
 * A mid-replay snapshot of the one cell in flight when the progress
 * file was last written (serial runner only).  The three state blobs
 * are opaque here; the runner feeds them back through loadState /
 * loadProbes on objects it builds itself.
 */
struct PartialCell
{
    bool valid = false;
    std::string row;
    std::string col;
    std::uint64_t cursor = 0;    ///< trace records already replayed
    std::string predictorState;  ///< IndirectPredictor::saveState bytes
    std::string engineState;     ///< ReplaySession::saveState bytes
    std::string probeState;      ///< saveProbes bytes (predictor+RAS)
};

/** Snapshot an in-flight cell into a PartialCell. */
PartialCell capturePartialCell(std::string row, std::string col,
                               std::uint64_t cursor,
                               const pred::IndirectPredictor &predictor,
                               const ReplaySession &session);

/**
 * Feed a PartialCell's blobs back into freshly built objects.
 * @retval false the blobs are corrupt or belong to a different
 *         configuration; the targets must be rebuilt and the cell
 *         replayed from the start
 */
bool restorePartialCell(const PartialCell &partial,
                        pred::IndirectPredictor &predictor,
                        ReplaySession &session);

/** Everything a suite progress file holds. */
struct SuiteProgress
{
    std::string fingerprint; ///< must match suiteFingerprint() to resume
    std::vector<CompletedCell> cells;
    PartialCell partial;

    /** Completed-cell lookup; nullptr when (row, col) isn't recorded. */
    const CompletedCell *find(const std::string &row,
                              const std::string &col) const;
};

/**
 * Canonical fingerprint of a suite computation: everything that can
 * change a matrix number — profiles (name, seed, record count),
 * predictor line-up, trace scale, factory and engine configuration.
 * Checkpoint options themselves are excluded (they only change when
 * results are written, never what they are).
 */
std::string
suiteFingerprint(const std::vector<workload::BenchmarkProfile> &profiles,
                 const std::vector<std::string> &predictor_names,
                 const SuiteOptions &options);

/** Encode a progress file blob. */
std::vector<std::uint8_t>
encodeSuiteProgress(const SuiteProgress &progress);

/** Decode a progress file blob; @p progress is cleared first. */
util::Status decodeSuiteProgress(const std::vector<std::uint8_t> &bytes,
                                 SuiteProgress &progress);

/** Read a blob's kind string ("sim" / "suite") from its header. */
util::Status checkpointKind(const std::vector<std::uint8_t> &bytes,
                            std::string &kind);

/**
 * Write @p bytes to @p path atomically: the bytes land in a ".tmp"
 * sibling first and are renamed over the target, so a crash mid-write
 * can never leave a half-written checkpoint under the real name.
 */
util::Status writeCheckpointFile(const std::string &path,
                                 const std::vector<std::uint8_t> &bytes);

/** Read a whole checkpoint file. */
util::Status readCheckpointFile(const std::string &path,
                                std::vector<std::uint8_t> &bytes);

/**
 * Embed a checkpoint blob into a binary trace as a kChunkCheckpoint
 * chunk, so a trace file can carry the simulation state that produced
 * its suffix.  Extract with TraceReader::onChunk.
 */
void embedCheckpoint(trace::TraceWriter &writer,
                     const std::vector<std::uint8_t> &bytes);

} // namespace ibp::sim

#endif // IBP_SIM_CHECKPOINT_HH_
