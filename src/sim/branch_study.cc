#include "sim/branch_study.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/logging.hh"

namespace ibp::sim {

namespace {

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/** Hash of the last @p order entries of @p window (newest at back). */
std::uint64_t
contextKey(const std::deque<trace::Addr> &window, unsigned order)
{
    std::uint64_t h = order;
    const std::size_t n = window.size();
    for (unsigned i = 0; i < order && i < n; ++i)
        h = mix(h, window[n - 1 - i]);
    return h;
}

/** One ideal exact-context predictor: context -> last target. */
struct IdealPredictor
{
    std::unordered_map<std::uint64_t, trace::Addr> table;
    std::uint64_t hits = 0;

    void
    sample(std::uint64_t key, trace::Addr target)
    {
        auto [it, fresh] = table.try_emplace(key, target);
        if (!fresh) {
            if (it->second == target)
                ++hits;
            it->second = target;
        }
    }
};

struct SiteState
{
    std::uint64_t executions = 0;
    std::vector<IdealPredictor> pb;  ///< one per studied order
    std::vector<IdealPredictor> pib;
};

} // namespace

const char *
correlationClassName(CorrelationClass cls)
{
    switch (cls) {
      case CorrelationClass::PbCorrelated:  return "PB";
      case CorrelationClass::PibCorrelated: return "PIB";
      case CorrelationClass::Either:        return "either";
      case CorrelationClass::Unpredictable: return "unpredictable";
    }
    return "?";
}

double
CorrelationStudy::dynamicShare(CorrelationClass cls) const
{
    if (dynamicTotal == 0)
        return 0;
    std::uint64_t matching = 0;
    for (const auto &site : sites)
        if (site.cls == cls)
            matching += site.executions;
    return static_cast<double>(matching) /
           static_cast<double>(dynamicTotal);
}

std::size_t
CorrelationStudy::staticCount(CorrelationClass cls) const
{
    std::size_t n = 0;
    for (const auto &site : sites)
        if (site.cls == cls)
            ++n;
    return n;
}

CorrelationStudy
studyCorrelation(trace::BranchSource &source,
                 const StudyOptions &options)
{
    fatal_if(options.orders.empty(), "study needs at least one order");
    const unsigned max_order =
        *std::max_element(options.orders.begin(), options.orders.end());

    std::deque<trace::Addr> pb_window;
    std::deque<trace::Addr> pib_window;
    std::map<trace::Addr, SiteState> states;

    trace::BranchRecord record;
    while (source.next(record)) {
        if (record.isPredictedIndirect()) {
            SiteState &state = states[record.pc];
            if (state.pb.empty()) {
                state.pb.resize(options.orders.size());
                state.pib.resize(options.orders.size());
            }
            ++state.executions;
            for (std::size_t k = 0; k < options.orders.size(); ++k) {
                const unsigned order = options.orders[k];
                state.pb[k].sample(contextKey(pb_window, order),
                                   record.target);
                state.pib[k].sample(contextKey(pib_window, order),
                                    record.target);
            }
        }

        // Advance the ground-truth windows.
        pb_window.push_back(record.nextPc());
        if (pb_window.size() > max_order)
            pb_window.pop_front();
        if (record.multiTarget &&
            (record.kind == trace::BranchKind::IndirectJmp ||
             record.kind == trace::BranchKind::IndirectCall)) {
            pib_window.push_back(record.target);
            if (pib_window.size() > max_order)
                pib_window.pop_front();
        }
    }

    CorrelationStudy study;
    for (const auto &[pc, state] : states) {
        if (state.executions < options.minExecutions)
            continue;
        SiteCorrelation site;
        site.pc = pc;
        site.executions = state.executions;
        for (std::size_t k = 0; k < options.orders.size(); ++k) {
            const double denom =
                static_cast<double>(state.executions);
            const double pb_acc =
                static_cast<double>(state.pb[k].hits) / denom;
            const double pib_acc =
                static_cast<double>(state.pib[k].hits) / denom;
            if (pb_acc > site.bestPbAccuracy) {
                site.bestPbAccuracy = pb_acc;
                site.bestPbOrder = options.orders[k];
            }
            if (pib_acc > site.bestPibAccuracy) {
                site.bestPibAccuracy = pib_acc;
                site.bestPibOrder = options.orders[k];
            }
        }

        const double best =
            std::max(site.bestPbAccuracy, site.bestPibAccuracy);
        if (best < options.floor)
            site.cls = CorrelationClass::Unpredictable;
        else if (site.bestPbAccuracy >
                 site.bestPibAccuracy + options.margin)
            site.cls = CorrelationClass::PbCorrelated;
        else if (site.bestPibAccuracy >
                 site.bestPbAccuracy + options.margin)
            site.cls = CorrelationClass::PibCorrelated;
        else
            site.cls = CorrelationClass::Either;

        study.dynamicTotal += site.executions;
        study.sites.push_back(site);
    }
    return study;
}

} // namespace ibp::sim
