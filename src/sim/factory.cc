#include "sim/factory.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "predictors/btb.hh"
#include "predictors/cascade.hh"
#include "predictors/dpath.hh"
#include "predictors/gap.hh"
#include "predictors/ittage.hh"
#include "predictors/oracle.hh"
#include "predictors/perceptron_indirect.hh"
#include "predictors/target_cache.hh"
#include "core/filtered_ppm.hh"
#include "core/ppm_predictor.hh"

namespace ibp::sim {

namespace {

std::size_t
scaled(std::size_t entries, double scale, std::size_t multiple = 1)
{
    const double raw = static_cast<double>(entries) * scale;
    auto n = static_cast<std::size_t>(std::llround(raw));
    n = std::max<std::size_t>(n, multiple);
    // Round down to the required multiple (associativity).
    n -= n % multiple;
    return std::max(n, multiple);
}

core::PpmPredictorConfig
scaledPpm(core::PpmVariant variant, double scale)
{
    core::PpmPredictorConfig config = core::paperPpmConfig(variant);
    if (scale != 1.0) {
        const unsigned m = config.ppm.hash.order;
        for (unsigned j = m; j >= 1; --j)
            config.ppm.tableEntries.push_back(
                scaled(std::size_t{1} << j, scale, 2));
    }
    return config;
}

pred::DpathConfig
paperDpath(double scale)
{
    pred::DpathConfig config;
    // Tagless 1K-entry PHTs, 24-bit registers, path lengths 1 and 3.
    config.shortPath = {scaled(1024, scale), 24, 24,
                        pred::StreamSel::MtIndirect, false, 4, 12};
    config.longPath = {scaled(1024, scale), 24, 8,
                       pred::StreamSel::MtIndirect, false, 4, 12};
    config.selectorEntries = 1024;
    return config;
}

pred::CascadeConfig
paperCascade(double scale, pred::FilterMode mode)
{
    pred::CascadeConfig config;
    config.filterEntries = 128;
    config.filterWays = 4;
    config.mode = mode;
    // Tagged 4-way PHTs, path lengths 6 and 4.  1024 entries per PHT
    // (2176 total with the filter, ~6% over the 2K budget — erring in
    // Cascade's favour keeps the headline comparison conservative;
    // power-of-two sets also keep the interleaved index partitioned).
    config.main.shortPath = {scaled(1024, scale, 4), 24, 6,
                             pred::StreamSel::MtIndirect, true, 4, 12};
    config.main.longPath = {scaled(1024, scale, 4), 24, 4,
                            pred::StreamSel::MtIndirect, true, 4, 12};
    config.main.selectorEntries = 1024;
    return config;
}

pred::IttageConfig
paperIttage(double scale)
{
    pred::IttageConfig config;
    // 512-entry base + 6 tagged 256-entry components = 2048 entries
    // total, the same envelope as the 2K-entry BTB; history lengths
    // 2..64 PIB symbols reach an order of magnitude past PPM-hyb's
    // order-10 stack.
    config.baseEntries = scaled(512, scale);
    config.numComponents = 6;
    config.entriesPerComponent = scaled(256, scale);
    config.tagBits = 12;
    config.minHistory = 2;
    config.maxHistory = 64;
    config.bitsPerTarget = 4;
    config.stream = pred::StreamSel::MtIndirect;
    return config;
}

pred::PerceptronIndirectConfig
paperPerceptron(double scale)
{
    pred::PerceptronIndirectConfig config;
    // 1024 candidate-cache entries + 4K 8-bit weights lands inside the
    // 2x band around the 2K-entry BTB2b that the fig6 budget test
    // enforces.
    config.candidateSets = scaled(256, scale);
    config.candidateWays = 4;
    config.entriesPerTable = scaled(512, scale);
    return config;
}

} // namespace

std::unique_ptr<pred::IndirectPredictor>
makePredictor(std::string_view name, const FactoryOptions &options)
{
    fatal_if(options.sizeScale < 0.01, "size scale out of range");
    const double s = options.sizeScale;

    if (name == "BTB")
        return std::make_unique<pred::Btb>(scaled(2048, s));
    if (name == "BTB2b")
        return std::make_unique<pred::Btb2b>(scaled(2048, s));

    if (name == "GAp") {
        pred::GapConfig config;
        config.numPhts = 2;
        config.entriesPerPht = scaled(1024, s);
        config.historyBits = 10;
        config.bitsPerTarget = 2;
        config.stream = pred::StreamSel::MtIndirect;
        return std::make_unique<pred::Gap>(config);
    }

    if (name == "TC-PIB" || name == "TC-PB" || name == "TC-IND") {
        pred::TargetCacheConfig config;
        config.entries = scaled(2048, s);
        config.historyBits = 11;
        config.bitsPerTarget = 2;
        // TC-PIB records the predicted (MT jmp/jsr) stream; TC-IND is
        // the Chang et al. variant whose history also includes
        // single-target indirects and returns (ablated in
        // bench_ablation_hash); TC-PB records every branch.
        config.stream = name == "TC-PB" ? pred::StreamSel::AllBranches
                        : name == "TC-IND"
                            ? pred::StreamSel::AllIndirect
                            : pred::StreamSel::MtIndirect;
        return std::make_unique<pred::TargetCache>(
            config, std::string(name));
    }

    if (name == "Dpath")
        return std::make_unique<pred::Dpath>(paperDpath(s));

    if (name == "Cascade")
        return std::make_unique<pred::Cascade>(
            paperCascade(s, pred::FilterMode::Leaky));
    if (name == "Cascade-strict")
        return std::make_unique<pred::Cascade>(
            paperCascade(s, pred::FilterMode::Strict), "Cascade-strict");

    if (name == "PPM-hyb")
        return std::make_unique<core::PpmPredictor>(
            scaledPpm(core::PpmVariant::Hybrid, s));
    if (name == "PPM-PIB")
        return std::make_unique<core::PpmPredictor>(
            scaledPpm(core::PpmVariant::PibOnly, s));
    if (name == "PPM-hyb-biased")
        return std::make_unique<core::PpmPredictor>(
            scaledPpm(core::PpmVariant::HybridBiased, s));

    if (name == "PPM-tagged") {
        auto config = scaledPpm(core::PpmVariant::Hybrid, s);
        config.ppm.tagged = true;
        config.ppm.ways = 2;
        config.ppm.tagBits = 8;
        return std::make_unique<core::PpmPredictor>(config,
                                                    "PPM-tagged");
    }

    if (name == "PPM-gshare") {
        auto config = scaledPpm(core::PpmVariant::Hybrid, s);
        config.ppm.hash.xorPc = true;
        return std::make_unique<core::PpmPredictor>(config,
                                                    "PPM-gshare");
    }

    if (name == "PPM-low") {
        auto config = scaledPpm(core::PpmVariant::Hybrid, s);
        config.ppm.hash.highOrderSelect = false;
        return std::make_unique<core::PpmPredictor>(config, "PPM-low");
    }

    if (name == "PPM-inclusive") {
        auto config = scaledPpm(core::PpmVariant::Hybrid, s);
        config.ppm.updatePolicy = core::UpdatePolicy::All;
        return std::make_unique<core::PpmPredictor>(config,
                                                    "PPM-inclusive");
    }

    if (name == "PPM-confidence") {
        auto config = scaledPpm(core::PpmVariant::Hybrid, s);
        config.ppm.selectPolicy = core::SelectPolicy::Confidence;
        return std::make_unique<core::PpmPredictor>(config,
                                                    "PPM-confidence");
    }

    if (name == "PPM-vote2" || name == "PPM-vote4") {
        // Section 4's rejected design: multi-arc states with
        // frequency counts and majority voting.  Entries are scaled
        // down so the bit budget stays comparable to PPM-hyb.
        const unsigned arcs = name == "PPM-vote2" ? 2 : 4;
        auto config = scaledPpm(core::PpmVariant::Hybrid,
                                s / static_cast<double>(arcs));
        config.ppm.votingTargets = arcs;
        return std::make_unique<core::PpmPredictor>(
            config, std::string(name));
    }

    if (name == "Filtered-PPM") {
        core::FilteredPpmConfig config;
        config.ppm = scaledPpm(core::PpmVariant::Hybrid, s);
        return std::make_unique<core::FilteredPpm>(config,
                                                   "Filtered-PPM");
    }

    if (name == "ITTAGE")
        return std::make_unique<pred::Ittage>(paperIttage(s));

    if (name == "Perceptron")
        return std::make_unique<pred::PerceptronIndirect>(
            paperPerceptron(s));

    if (name.starts_with("Oracle-PIB@")) {
        const auto k = std::stoul(
            std::string(name.substr(std::string_view("Oracle-PIB@")
                                        .size())));
        pred::OracleConfig config;
        config.pathLength = static_cast<unsigned>(k);
        config.stream = pred::StreamSel::MtIndirect;
        return std::make_unique<pred::Oracle>(config);
    }

    fatal("unknown predictor name: ", std::string(name));
}

bool
knownPredictor(std::string_view name)
{
    static const char *known[] = {
        "BTB", "BTB2b", "GAp", "TC-PIB", "TC-PB", "TC-IND", "Dpath",
        "Cascade", "Cascade-strict", "PPM-hyb", "PPM-PIB",
        "PPM-hyb-biased", "PPM-tagged", "PPM-gshare", "PPM-low",
        "PPM-inclusive", "PPM-confidence", "PPM-vote2", "PPM-vote4",
        "Filtered-PPM", "ITTAGE", "Perceptron",
    };
    for (const char *k : known)
        if (name == k)
            return true;
    return name.starts_with("Oracle-PIB@");
}

std::vector<std::string>
figure6Predictors()
{
    // The paper's seven, in its order, then the post-1998 baselines
    // (ITTAGE, hashed perceptron) at the same 2K-entry budget — fig6
    // doubles as a 1998-vs-modern ablation.
    return {"BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade",
            "PPM-hyb", "ITTAGE", "Perceptron"};
}

std::vector<std::string>
figure7Predictors()
{
    // The paper's three PPM variants first (bench_fig7's shape checks
    // index them positionally), then the post-1998 baselines.
    return {"PPM-hyb", "PPM-PIB", "PPM-hyb-biased", "ITTAGE",
            "Perceptron"};
}

std::vector<std::string>
allPredictors()
{
    return {"BTB",           "BTB2b",          "GAp",
            "TC-PIB",        "TC-PB",          "TC-IND",
            "Dpath",         "Cascade",        "Cascade-strict",
            "PPM-hyb",       "PPM-PIB",        "PPM-hyb-biased",
            "PPM-tagged",    "PPM-gshare",     "PPM-low",
            "PPM-inclusive", "PPM-confidence", "PPM-vote2",
            "PPM-vote4",     "Filtered-PPM",   "ITTAGE",
            "Perceptron",    "Oracle-PIB@4"};
}

} // namespace ibp::sim
