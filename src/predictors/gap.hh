/**
 * @file
 * GAp two-level indirect-branch predictor (Driesen & Holzle).
 *
 * A global path-history register records a few low-order bits of each
 * recent target; a gshare hash of the register and the branch pc
 * indexes per-address pattern history tables holding {target, 2-bit
 * replacement counter} entries.  The paper's Figure-6 configuration is
 * 2 tagless 1K-entry PHTs with a 10-bit register (5 targets x 2 bits).
 */

#ifndef IBP_PREDICTORS_GAP_HH_
#define IBP_PREDICTORS_GAP_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hh"
#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Configuration of one GAp predictor. */
struct GapConfig
{
    std::size_t numPhts = 2;        ///< per-address PHT count
    std::size_t entriesPerPht = 1024;
    unsigned historyBits = 10;      ///< PHR width
    unsigned bitsPerTarget = 2;     ///< symbol width shifted per branch
    StreamSel stream = StreamSel::MtIndirect;
};

/** Two-level GAp predictor with gshare indexing. */
class Gap : public IndirectPredictor
{
  public:
    explicit Gap(const GapConfig &config, std::string name = "GAp");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

    /** No gated probes yet; the explicit no-op override records that
     *  as a deliberate choice (serde-coverage lint) and keeps report
     *  schemas unchanged. */
    void snapshotProbes(obs::ProbeRegistry &registry) const override
    {
        (void)registry;
    }

    /** The history register (exposed for tests). */
    const ShiftHistory &history() const { return history_; }

  private:
    struct Slot
    {
        std::size_t pht;
        std::uint64_t index;
    };

    Slot slotFor(trace::Addr pc) const;

    GapConfig config_;
    std::string name_;
    ShiftHistory history_;
    std::vector<util::DirectTable<TargetEntry>> phts_;
    Slot lastSlot{0, 0};
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_GAP_HH_
