#include "predictors/btb.hh"

namespace ibp::pred {

Btb::Btb(std::size_t entries)
    : table_(entries)
{
}

void
Btb::observe(const trace::BranchRecord &record)
{
    (void)record; // no path state
}

void
Btb::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("btb/replacements", replacements_);
}

std::uint64_t
Btb::storageBits() const
{
    return table_.size() * (1 + 64);
}

void
Btb::reset()
{
    table_.reset();
    replacements_.reset();
}

void
Btb::saveState(util::StateWriter &writer) const
{
    table_.saveState(writer,
                     [](util::StateWriter &w, const Entry &e) {
                         w.writeBool(e.valid);
                         w.writeU64(e.target);
                     });
}

void
Btb::loadState(util::StateReader &reader)
{
    table_.loadState(reader, [](util::StateReader &r, Entry &e) {
        e.valid = r.readBool();
        e.target = r.readU64();
    });
}

void
Btb::saveProbes(util::StateWriter &writer) const
{
    writer.writeU64(replacements_.value());
}

void
Btb::loadProbes(util::StateReader &reader)
{
    replacements_.set(reader.readU64());
}

Btb2b::Btb2b(std::size_t entries)
    : table_(entries)
{
}

void
Btb2b::observe(const trace::BranchRecord &record)
{
    (void)record;
}

void
Btb2b::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("btb/replacements", replacements_);
}

std::uint64_t
Btb2b::storageBits() const
{
    return table_.size() * TargetEntry::bits();
}

void
Btb2b::reset()
{
    table_.reset();
    replacements_.reset();
}

void
Btb2b::saveState(util::StateWriter &writer) const
{
    table_.saveState(writer, saveTargetEntry);
}

void
Btb2b::loadState(util::StateReader &reader)
{
    table_.loadState(reader, loadTargetEntry);
}

void
Btb2b::saveProbes(util::StateWriter &writer) const
{
    writer.writeU64(replacements_.value());
}

void
Btb2b::loadProbes(util::StateReader &reader)
{
    replacements_.set(reader.readU64());
}

} // namespace ibp::pred
