#include "predictors/btb.hh"

namespace ibp::pred {

Btb::Btb(std::size_t entries)
    : table_(entries)
{
}

void
Btb::observe(const trace::BranchRecord &record)
{
    (void)record; // no path state
}

void
Btb::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("btb/replacements", replacements_);
}

std::uint64_t
Btb::storageBits() const
{
    return table_.size() * (1 + 64);
}

void
Btb::reset()
{
    table_.reset();
    replacements_.reset();
}

Btb2b::Btb2b(std::size_t entries)
    : table_(entries)
{
}

void
Btb2b::observe(const trace::BranchRecord &record)
{
    (void)record;
}

void
Btb2b::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("btb/replacements", replacements_);
}

std::uint64_t
Btb2b::storageBits() const
{
    return table_.size() * TargetEntry::bits();
}

void
Btb2b::reset()
{
    table_.reset();
    replacements_.reset();
}

} // namespace ibp::pred
