#include "predictors/btb.hh"

namespace ibp::pred {

Btb::Btb(std::size_t entries)
    : table_(entries)
{
}

std::uint64_t
Btb::indexFor(trace::Addr pc) const
{
    return (pc >> 2) % table_.size();
}

Prediction
Btb::predict(trace::Addr pc)
{
    const Entry &entry = table_.at(indexFor(pc));
    return {entry.valid, entry.target};
}

void
Btb::update(trace::Addr pc, trace::Addr target)
{
    Entry &entry = table_.at(indexFor(pc));
    entry.valid = true;
    entry.target = target;
}

void
Btb::observe(const trace::BranchRecord &record)
{
    (void)record; // no path state
}

std::uint64_t
Btb::storageBits() const
{
    return table_.size() * (1 + 64);
}

void
Btb::reset()
{
    table_.reset();
}

Btb2b::Btb2b(std::size_t entries)
    : table_(entries)
{
}

std::uint64_t
Btb2b::indexFor(trace::Addr pc) const
{
    return (pc >> 2) % table_.size();
}

Prediction
Btb2b::predict(trace::Addr pc)
{
    const TargetEntry &entry = table_.at(indexFor(pc));
    return {entry.valid, entry.target};
}

void
Btb2b::update(trace::Addr pc, trace::Addr target)
{
    table_.at(indexFor(pc)).train(target);
}

void
Btb2b::observe(const trace::BranchRecord &record)
{
    (void)record;
}

std::uint64_t
Btb2b::storageBits() const
{
    return table_.size() * TargetEntry::bits();
}

void
Btb2b::reset()
{
    table_.reset();
}

} // namespace ibp::pred
