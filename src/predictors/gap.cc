#include "predictors/gap.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ibp::pred {

Gap::Gap(const GapConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      history_(config.historyBits, config.bitsPerTarget, config.stream)
{
    fatal_if(config.numPhts == 0, "GAp needs at least one PHT");
    fatal_if(config.entriesPerPht == 0, "GAp needs non-empty PHTs");
    phts_.reserve(config.numPhts);
    for (std::size_t i = 0; i < config.numPhts; ++i)
        phts_.emplace_back(config.entriesPerPht);
}

Gap::Slot
Gap::slotFor(trace::Addr pc) const
{
    // Per-address table selection uses pc bits above the ones the
    // gshare index consumes, so neighbouring branches spread across
    // PHTs.
    const std::uint64_t hashed = (pc >> 2) ^ history_.value();
    Slot slot;
    slot.index = util::reduceIndex(hashed, config_.entriesPerPht);
    slot.pht = util::reduceIndex((pc >> 2) / config_.entriesPerPht,
                                 config_.numPhts);
    return slot;
}

Prediction
Gap::predict(trace::Addr pc)
{
    lastSlot = slotFor(pc);
    const TargetEntry &entry = phts_[lastSlot.pht].at(lastSlot.index);
    return {entry.valid, entry.target};
}

void
Gap::update(trace::Addr pc, trace::Addr target)
{
    (void)pc; // trained at the slot captured by the preceding predict()
    phts_[lastSlot.pht].at(lastSlot.index).train(target);
}

void
Gap::observe(const trace::BranchRecord &record)
{
    history_.observe(record);
}

std::uint64_t
Gap::storageBits() const
{
    std::uint64_t bits = history_.bits();
    for (const auto &pht : phts_)
        bits += pht.size() * TargetEntry::bits();
    return bits;
}

void
Gap::reset()
{
    history_.reset();
    for (auto &pht : phts_)
        pht.reset();
}

void
Gap::saveState(util::StateWriter &writer) const
{
    history_.saveState(writer);
    writer.writeVarint(phts_.size());
    for (const auto &pht : phts_)
        pht.saveState(writer, saveTargetEntry);
    writer.writeVarint(lastSlot.pht);
    writer.writeU64(lastSlot.index);
}

void
Gap::loadState(util::StateReader &reader)
{
    history_.loadState(reader);
    const std::uint64_t phts = reader.readVarint();
    if (reader.ok() && phts != phts_.size()) {
        reader.fail("GAp PHT count mismatch");
        return;
    }
    for (auto &pht : phts_)
        pht.loadState(reader, loadTargetEntry);
    lastSlot.pht = static_cast<std::size_t>(reader.readVarint());
    lastSlot.index = reader.readU64();
    if (reader.ok() && (lastSlot.pht >= config_.numPhts ||
                        lastSlot.index >= config_.entriesPerPht))
        reader.fail("GAp last slot out of range");
}

} // namespace ibp::pred
