/**
 * @file
 * ITTAGE-style indirect-target predictor (Seznec & Michaud, 2006+).
 *
 * A tagless base table backs N tagged components whose path-history
 * lengths grow geometrically.  Each lookup probes every component with
 * an index and tag hashed from the branch pc and a folded slice of the
 * path history; the longest-history component whose tag matches is the
 * *provider* and its target is the prediction, the next match (or the
 * base table) is the *alternate*.  On a misprediction a new entry is
 * allocated in a longer-history component, steered by per-entry
 * "useful" counters — the mechanism that lets the predictor grow its
 * effective history only for branches that need it, which is exactly
 * the long-range-correlation regime the paper's fixed-order PPM stack
 * cannot reach within the same 2K-entry budget.
 *
 * This implementation post-dates the paper (the 1998 lineup stops at
 * Cascade); it exists so fig6 doubles as a 1998-vs-modern ablation at
 * an equal hardware budget.  History folding reuses the util bit
 * helpers (the same Select-Fold family as the paper's SFSXS hash) but
 * is maintained incrementally per component, TAGE-CSR style.
 */

#ifndef IBP_PREDICTORS_ITTAGE_HH_
#define IBP_PREDICTORS_ITTAGE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitops.hh"
#include "util/probe.hh"
#include "util/sat_counter.hh"
#include "util/table.hh"
#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Configuration of one ITTAGE predictor. */
struct IttageConfig
{
    std::size_t baseEntries = 512;       ///< tagless base table
    std::size_t numComponents = 6;       ///< tagged components
    std::size_t entriesPerComponent = 256;
    unsigned tagBits = 12;               ///< per-entry partial tag
    unsigned minHistory = 2;             ///< symbols, shortest component
    unsigned maxHistory = 64;            ///< symbols, longest component
    unsigned bitsPerTarget = 4;          ///< path-symbol width
    StreamSel stream = StreamSel::MtIndirect;
};

/** One tagged-component line: full target, partial tag, a 2-bit
 *  prediction-confidence counter and a 2-bit usefulness counter. */
struct IttageEntry
{
    trace::Addr target = 0;
    std::uint32_t tag = 0;
    util::SatCounter confidence{2, 0};
    util::SatCounter useful{2, 0};
    bool valid = false;
};

/**
 * A path-history slice folded down to @c width bits, maintained
 * incrementally (TAGE's circular-shift-register idiom).  The folded
 * value is the XOR over the window's symbols of
 * rotateLeft(symbol, symbolBits * age), so pushing a symbol rotates
 * the whole word once after the outgoing symbol's contribution is
 * cancelled — O(1) per retired branch instead of O(length).
 */
class FoldedHistory
{
  public:
    FoldedHistory(unsigned width, unsigned length, unsigned symbol_bits)
        : width_(width), length_(length), symbolBits(symbol_bits)
    {
        panic_if(width == 0 || width > 32,
                 "FoldedHistory width out of range: ", width);
        panic_if(length == 0, "FoldedHistory needs length >= 1");
    }

    /** Advance: @p incoming enters the window, @p outgoing (the
     *  length-th most recent symbol before the push) leaves it. */
    void
    push(std::uint32_t incoming, std::uint32_t outgoing)
    {
        const std::uint64_t gone = util::rotateLeft(
            outgoing, width_, symbolBits * (length_ - 1));
        folded_ = util::rotateLeft(folded_ ^ gone, width_, symbolBits) ^
                  util::selectLow(incoming, width_);
        folded_ &= util::maskLow(width_);
    }

    std::uint64_t value() const { return folded_; }
    unsigned width() const { return width_; }
    unsigned length() const { return length_; }

    void reset() { folded_ = 0; }

    void
    saveState(util::StateWriter &writer) const
    {
        writer.writeU64(folded_);
    }

    void
    loadState(util::StateReader &reader)
    {
        const std::uint64_t folded = reader.readU64();
        if (reader.ok() && (folded & ~util::maskLow(width_)) != 0) {
            reader.fail("FoldedHistory value wider than the register");
            return;
        }
        folded_ = folded;
    }

  private:
    unsigned width_;
    unsigned length_;
    unsigned symbolBits;
    std::uint64_t folded_ = 0;
};

/** ITTAGE predictor: base table + tagged geometric-history components. */
class Ittage : public IndirectPredictor
{
  public:
    explicit Ittage(const IttageConfig &config,
                    std::string name = "ITTAGE");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;
    void snapshotProbes(obs::ProbeRegistry &registry) const override;

    /** Component history lengths, shortest first (for tests). */
    const std::vector<unsigned> &historyLengths() const
    {
        return histLens_;
    }

    /** Index of the component (or kBase) a lookup of @p pc would use
     *  as provider right now (for tests; no state is touched). */
    static constexpr std::size_t kBase = ~std::size_t{0};
    std::size_t providerComponent(trace::Addr pc) const;

    /** Raw component entry access (for tests). */
    const IttageEntry &
    componentEntry(std::size_t component, trace::Addr pc) const
    {
        return components_[component].at(indexFor(component, pc));
    }

    /** The index and tag a lookup of @p pc computes for @p component
     *  under the current history (for tests). */
    std::uint64_t indexFor(std::size_t component, trace::Addr pc) const;
    std::uint32_t tagFor(std::size_t component, trace::Addr pc) const;

  private:
    /** Everything update() needs from the lookup predict() performed;
     *  recomputed from pc because the histories only advance later, in
     *  observe() — so predict() stays side-effect free. */
    struct Lookup
    {
        std::size_t provider = kBase;   ///< component index or kBase
        std::size_t altpred = kBase;    ///< next match below provider
        Prediction prediction;          ///< what predict() returned
        Prediction alternate;           ///< the alternate's target
        std::uint64_t baseIndex = 0;
    };

    Lookup lookupFor(trace::Addr pc) const;
    void allocate(trace::Addr pc, trace::Addr target,
                  std::size_t provider);

    IttageConfig config_;
    std::string name_;
    std::vector<unsigned> histLens_;
    SymbolHistory history_;
    util::DirectTable<TargetEntry> base_;
    std::vector<util::DirectTable<IttageEntry>> components_;
    std::vector<FoldedHistory> indexFolds_;
    std::vector<FoldedHistory> tagFoldsA_;
    std::vector<FoldedHistory> tagFoldsB_;
    util::Counter allocations_;
    util::Counter allocationStalls_;
    util::Counter taggedProvides_;
};

/** Serialize one IttageEntry (checkpoint codec). */
void saveIttageEntry(util::StateWriter &writer, const IttageEntry &entry);

/** Restore one IttageEntry; out-of-range counters are corruption. */
void loadIttageEntry(util::StateReader &reader, IttageEntry &entry);

} // namespace ibp::pred

#endif // IBP_PREDICTORS_ITTAGE_HH_
