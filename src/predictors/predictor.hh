/**
 * @file
 * The common indirect-branch predictor interface and the shared
 * target-entry update policy.
 *
 * Engine contract (see sim/engine.cc): for every multi-target indirect
 * branch the engine calls predict(pc), then update(pc, actual); for
 * *every* retired branch (including that one) it then calls
 * observe(record).  update() therefore always sees the same history
 * state as the predict() it follows, and history registers advance in
 * observe() — which matches the paper's protocol where "the update
 * step starts by shifting the actual target into the PHR" *after* the
 * tables were trained with the pre-shift indices.
 */

#ifndef IBP_PREDICTORS_PREDICTOR_HH_
#define IBP_PREDICTORS_PREDICTOR_HH_

#include <cstdint>
#include <string>

#include "obs/registry.hh"
#include "trace/branch_record.hh"
#include "util/sat_counter.hh"

namespace ibp::pred {

/** Result of a target lookup. */
struct Prediction
{
    bool valid = false;       ///< false: the predictor abstains
    trace::Addr target = 0;

    bool
    hit(trace::Addr actual) const
    {
        return valid && target == actual;
    }
};

/** Abstract indirect-branch target predictor. */
class IndirectPredictor
{
  public:
    virtual ~IndirectPredictor() = default;

    /** Short display name ("BTB2b", "PPM-hyb", ...). */
    virtual std::string name() const = 0;

    /** Look up the predicted target of the MT indirect branch @p pc. */
    virtual Prediction predict(trace::Addr pc) = 0;

    /**
     * Train with the resolved target of the branch just predicted.
     * Always called immediately after predict() for the same branch.
     */
    virtual void update(trace::Addr pc, trace::Addr target) = 0;

    /**
     * predict() immediately followed by update(), fused into one
     * virtual call.  The replay engine always predicts and trains the
     * same branch back to back, so this is the call it actually makes;
     * the default shim makes it exactly equivalent to the two-call
     * protocol.  Predictors whose predict and update touch the same
     * table slot (the BTB family) override it to locate the slot once.
     */
    virtual Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target)
    {
        const Prediction prediction = predict(pc);
        update(pc, target);
        return prediction;
    }

    /** Observe every retired branch (advances path histories). */
    virtual void observe(const trace::BranchRecord &record) = 0;

    /**
     * False iff observe() is a no-op for this predictor (BTB-family
     * predictors keep no path state).  The engine hoists this out of
     * its replay loop and skips the per-record virtual observe()
     * call; overriding it never changes any prediction.
     */
    virtual bool wantsObserve() const { return true; }

    /**
     * Copy this predictor's probe values into @p registry under
     * stable slash-separated names ("ppm/order_depth", ...).  Called
     * once per engine run, off the hot path; the default contributes
     * nothing.  In probes-off builds gated values read as zero but the
     * names still appear, keeping report schemas stable.
     */
    virtual void snapshotProbes(obs::ProbeRegistry &registry) const
    {
        (void)registry;
    }

    /** Storage cost in bits, for hardware-budget accounting. */
    virtual std::uint64_t storageBits() const = 0;

    /** Clear all state (tables, histories, counters). */
    virtual void reset() = 0;
};

/**
 * A BTB-like prediction entry: most-recent target plus the 2-bit
 * up/down counter the paper uses to gate target replacement ("the
 * target is updated on two consecutive misses").
 */
struct TargetEntry
{
    bool valid = false;
    trace::Addr target = 0;
    util::SatCounter counter{2, 1};

    /** Train with the resolved target under the hysteresis policy. */
    void
    train(trace::Addr actual)
    {
        if (!valid) {
            valid = true;
            target = actual;
            counter.set(1);
            return;
        }
        if (target == actual) {
            counter.increment();
            return;
        }
        if (counter.value() == 0) {
            target = actual;
            counter.set(1);
        } else {
            counter.decrement();
        }
    }

    /** Storage cost of one entry in bits (target field width 64). */
    static constexpr std::uint64_t
    bits()
    {
        return 1 + 64 + 2;
    }
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_PREDICTOR_HH_
