/**
 * @file
 * The common indirect-branch predictor interface and the shared
 * target-entry update policy.
 *
 * Engine contract (see sim/engine.cc): for every multi-target indirect
 * branch the engine calls predict(pc), then update(pc, actual); for
 * *every* retired branch (including that one) it then calls
 * observe(record).  update() therefore always sees the same history
 * state as the predict() it follows, and history registers advance in
 * observe() — which matches the paper's protocol where "the update
 * step starts by shifting the actual target into the PHR" *after* the
 * tables were trained with the pre-shift indices.
 */

#ifndef IBP_PREDICTORS_PREDICTOR_HH_
#define IBP_PREDICTORS_PREDICTOR_HH_

#include <cstdint>
#include <string>

#include "util/sat_counter.hh"
#include "util/serde.hh"
#include "trace/branch_record.hh"
#include "obs/registry.hh"

namespace ibp::pred {

/** Result of a target lookup. */
struct Prediction
{
    bool valid = false;       ///< false: the predictor abstains
    trace::Addr target = 0;

    bool
    hit(trace::Addr actual) const
    {
        return valid && target == actual;
    }
};

/** Serialize a Prediction (hybrids checkpoint their last component
 *  results, which feed the selector update). */
inline void
savePrediction(util::StateWriter &writer, const Prediction &prediction)
{
    writer.writeBool(prediction.valid);
    writer.writeU64(prediction.target);
}

/** Restore a Prediction saved by savePrediction(). */
inline void
loadPrediction(util::StateReader &reader, Prediction &prediction)
{
    prediction.valid = reader.readBool();
    prediction.target = reader.readU64();
}

/** Abstract indirect-branch target predictor. */
class IndirectPredictor
{
  public:
    virtual ~IndirectPredictor() = default;

    /** Short display name ("BTB2b", "PPM-hyb", ...). */
    virtual std::string name() const = 0;

    /** Look up the predicted target of the MT indirect branch @p pc. */
    virtual Prediction predict(trace::Addr pc) = 0;

    /**
     * Train with the resolved target of the branch just predicted.
     * Always called immediately after predict() for the same branch.
     */
    virtual void update(trace::Addr pc, trace::Addr target) = 0;

    /**
     * predict() immediately followed by update(), fused into one
     * virtual call.  The replay engine always predicts and trains the
     * same branch back to back, so this is the call it actually makes;
     * the default shim makes it exactly equivalent to the two-call
     * protocol.  Predictors whose predict and update touch the same
     * table slot (the BTB family) override it to locate the slot once.
     */
    virtual Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target)
    {
        const Prediction prediction = predict(pc);
        update(pc, target);
        return prediction;
    }

    /** Observe every retired branch (advances path histories). */
    virtual void observe(const trace::BranchRecord &record) = 0;

    /**
     * False iff observe() is a no-op for this predictor (BTB-family
     * predictors keep no path state).  The engine hoists this out of
     * its replay loop and skips the per-record virtual observe()
     * call; overriding it never changes any prediction.
     */
    virtual bool wantsObserve() const { return true; }

    /**
     * Copy this predictor's probe values into @p registry under
     * stable slash-separated names ("ppm/order_depth", ...).  Called
     * once per engine run, off the hot path; the default contributes
     * nothing.  In probes-off builds gated values read as zero but the
     * names still appear, keeping report schemas stable.
     */
    virtual void snapshotProbes(obs::ProbeRegistry &registry) const
    {
        (void)registry;
    }

    /** Storage cost in bits, for hardware-budget accounting. */
    virtual std::uint64_t storageBits() const = 0;

    /** Clear all state (tables, histories, counters). */
    virtual void reset() = 0;

    /**
     * Serialize every piece of architectural state — tables, history
     * registers, hysteresis counters, selection state — such that
     * loadState() into a freshly constructed predictor of the same
     * configuration reproduces future predictions bit-exactly.
     * Gated probe values are explicitly excluded (see saveProbes());
     * the default writes nothing, which is correct for stateless
     * predictors and keeps test doubles compiling.
     */
    virtual void saveState(util::StateWriter &writer) const
    {
        (void)writer;
    }

    /**
     * Restore state written by saveState() on a same-configured
     * predictor.  Decode failures — truncation, corruption, geometry
     * mismatch — latch on @p reader (never crash); callers check
     * reader.status() afterwards and must discard the predictor on
     * error, since a failed load leaves it partially written.
     */
    virtual void loadState(util::StateReader &reader) { (void)reader; }

    /**
     * Serialize instrumentation probe values (the gated counters that
     * feed snapshotProbes()).  Kept separate from saveState() so the
     * architectural stream is bit-identical across instrumented and
     * probe-free builds; implementations use fixed-width writes only,
     * so even this stream's *length* is build-invariant.
     */
    virtual void saveProbes(util::StateWriter &writer) const
    {
        (void)writer;
    }

    /** Restore probe values; a no-op (after consuming the fixed-width
     *  payload) in probe-free builds. */
    virtual void loadProbes(util::StateReader &reader) { (void)reader; }
};

/**
 * A BTB-like prediction entry: most-recent target plus the 2-bit
 * up/down counter the paper uses to gate target replacement ("the
 * target is updated on two consecutive misses").
 */
struct TargetEntry
{
    // Declaration order packs the entry into 16 bytes (target, then
    // the 6-byte counter, then the flag) — table footprint is replay
    // bandwidth, so entry size is a measured quantity, not taste.
    trace::Addr target = 0;
    util::SatCounter counter{2, 1};
    bool valid = false;

    /** Train with the resolved target under the hysteresis policy.
     *
     *  Written as selects rather than an if-chain: which arm runs
     *  depends on hash-indexed table contents, so the host CPU cannot
     *  predict it — the branchy form costs a mispredict on a large
     *  fraction of trains in every table-heavy predictor's hot loop.
     */
    void
    train(trace::Addr actual)
    {
        const unsigned cur = counter.value();
        const bool match = valid && target == actual;
        // Replace the target when the entry is empty or its hysteresis
        // has decayed to zero ("updated on two consecutive misses").
        const bool replace = !valid || (!match && cur == 0);
        const unsigned bumped = cur == counter.max() ? cur : cur + 1;
        // On the mismatch-decrement arm cur > 0, so cur - 1 is safe.
        counter.set(replace ? 1u : match ? bumped : cur - 1);
        target = replace ? actual : target;
        valid = true;
    }

    /** Storage cost of one entry in bits (target field width 64). */
    static constexpr std::uint64_t
    bits()
    {
        return 1 + 64 + 2;
    }
};

/** Serialize one TargetEntry — the shared codec for every table of
 *  them (BTB2b, GAp, Dpath, Cascade, Markov arenas). */
inline void
saveTargetEntry(util::StateWriter &writer, const TargetEntry &entry)
{
    writer.writeBool(entry.valid);
    writer.writeU64(entry.target);
    writer.writeU8(static_cast<std::uint8_t>(entry.counter.value()));
}

/** Restore one TargetEntry; counter values beyond the 2-bit range are
 *  corruption. */
inline void
loadTargetEntry(util::StateReader &reader, TargetEntry &entry)
{
    entry.valid = reader.readBool();
    entry.target = reader.readU64();
    const std::uint8_t count = reader.readU8();
    if (reader.ok() && count > entry.counter.max()) {
        reader.fail("saturating counter value out of range");
        return;
    }
    entry.counter.set(count);
}

} // namespace ibp::pred

#endif // IBP_PREDICTORS_PREDICTOR_HH_
