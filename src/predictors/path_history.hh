/**
 * @file
 * Path-history registers.
 *
 * Every two-level predictor in the paper records a few low-order bits
 * of the targets of some *stream* of branches.  Which stream is the
 * defining knob: the Target Cache work (Chang et al.) showed that
 * per-benchmark predictability depends strongly on whether the history
 * holds all branches (PB), indirect branches only (PIB), or
 * calls/returns; the paper's PPM-hyb selects between PB and PIB
 * dynamically per branch.
 *
 * Two register flavours are provided:
 *  - ShiftHistory: a packed shift register of totalBits (GAp, TC,
 *    Dpath, Cascade) — new symbols shift in at the low end;
 *  - SymbolHistory: the last N symbols kept whole (the PPM predictor's
 *    PHR, whose SFSXS hash needs per-target symbols).
 */

#ifndef IBP_PREDICTORS_PATH_HISTORY_HH_
#define IBP_PREDICTORS_PATH_HISTORY_HH_

#include <cstdint>
#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/serde.hh"
#include "util/table.hh"
#include "trace/branch_record.hh"

namespace ibp::pred {

/** Which branches contribute symbols to a history register. */
enum class StreamSel : std::uint8_t
{
    AllBranches,  ///< every branch (PB path)
    AllIndirect,  ///< jmp + jsr + ret
    MtIndirect,   ///< multi-target jmp + jsr (PIB path)
    CallsReturns, ///< jsr + ret
};

/** Printable stream name. */
const char *streamName(StreamSel stream);

/**
 * True iff @p record belongs to @p stream.  Inline: every history
 * register asks this once per retired branch.
 */
constexpr bool
inStream(StreamSel stream, const trace::BranchRecord &record)
{
    using trace::BranchKind;
    switch (stream) {
      case StreamSel::AllBranches:
        return true;
      case StreamSel::AllIndirect:
        return trace::isIndirect(record.kind);
      case StreamSel::MtIndirect:
        return record.multiTarget &&
               (record.kind == BranchKind::IndirectJmp ||
                record.kind == BranchKind::IndirectCall);
      case StreamSel::CallsReturns:
        return record.kind == BranchKind::IndirectCall ||
               record.kind == BranchKind::Return;
    }
    return false;
}

/**
 * The path symbol a record contributes: low bits of the resolved next
 * address, above the 2 alignment bits.  For a conditional branch the
 * resolved address encodes the direction, which is the information a
 * hardware PHR captures.
 */
constexpr std::uint64_t
pathSymbol(const trace::BranchRecord &record, unsigned bits)
{
    return util::selectLow(record.nextPc() >> 2, bits);
}

/** Packed shift-register path history. */
class ShiftHistory
{
  public:
    /**
     * @param total_bits register width (e.g. 10 for the paper's GAp)
     * @param bits_per_target symbol width shifted in per branch
     * @param stream which branches contribute
     */
    ShiftHistory(unsigned total_bits, unsigned bits_per_target,
                 StreamSel stream)
        : totalBits(total_bits), symbolBits(bits_per_target),
          stream_(stream)
    {
        panic_if(total_bits == 0 || total_bits > 64,
                 "ShiftHistory width out of range: ", total_bits);
        panic_if(bits_per_target == 0 || bits_per_target > total_bits,
                 "ShiftHistory symbol width out of range");
    }

    /** Advance on a retired branch (no-op outside the stream). */
    void
    observe(const trace::BranchRecord &record)
    {
        if (!inStream(stream_, record))
            return;
        value_ = ((value_ << symbolBits) |
                  pathSymbol(record, symbolBits)) &
                 util::maskLow(totalBits);
    }

    /** The packed register contents. */
    std::uint64_t value() const { return value_; }

    unsigned bits() const { return totalBits; }
    StreamSel stream() const { return stream_; }

    void reset() { value_ = 0; }

    /** Serialize the register contents. */
    void
    saveState(util::StateWriter &writer) const
    {
        writer.writeU64(value_);
    }

    /** Restore saved contents; bits beyond the register width are
     *  corruption. */
    void
    loadState(util::StateReader &reader)
    {
        const std::uint64_t value = reader.readU64();
        if (reader.ok() && (value & ~util::maskLow(totalBits)) != 0) {
            reader.fail("ShiftHistory value wider than the register");
            return;
        }
        value_ = value;
    }

  private:
    unsigned totalBits;
    unsigned symbolBits;
    StreamSel stream_;
    std::uint64_t value_ = 0;
};

/** Whole-symbol path history (the PPM predictor's PHR). */
class SymbolHistory
{
  public:
    /**
     * @param length number of targets retained (the PPM order m)
     * @param bits_per_symbol low-order bits kept per target
     * @param stream which branches contribute
     */
    SymbolHistory(unsigned length, unsigned bits_per_symbol,
                  StreamSel stream)
        : symbolBits(bits_per_symbol), stream_(stream),
          symbols_(length, 0)
    {
        panic_if(length == 0, "SymbolHistory needs length >= 1");
        panic_if(bits_per_symbol == 0 || bits_per_symbol > 32,
                 "SymbolHistory symbol width out of range");
    }

    /**
     * Advance on a retired branch (no-op outside the stream).
     * @retval true a symbol was inserted — callers keeping derived
     *         state in lock-step (the PPM predictor's incremental
     *         SFSXS word) advance theirs exactly when this returns
     *         true.
     */
    bool
    observe(const trace::BranchRecord &record)
    {
        if (!inStream(stream_, record))
            return false;
        push(static_cast<std::uint32_t>(
            pathSymbol(record, symbolBits)));
        return true;
    }

    /**
     * Insert an already-computed symbol (the stream check and
     * pathSymbol() are the caller's).  Lets a caller feeding several
     * registers from one record compute the symbol once.
     */
    void
    push(std::uint32_t symbol)
    {
        // Ring insert: head_ walks backwards so symbol(0) is always
        // the most recent target.  Equivalent to (but much cheaper
        // than) shifting every slot per retired branch.
        head_ = head_ == 0 ? symbols_.size() - 1 : head_ - 1;
        symbols_[head_] = symbol;
    }

    /** The @p i-th most recent symbol (0 = most recent). */
    std::uint32_t
    symbol(std::size_t i) const
    {
        ibp_table_check(i >= symbols_.size(),
                        "SymbolHistory index out of range");
        std::size_t slot = head_ + i;
        if (slot >= symbols_.size())
            slot -= symbols_.size();
        return symbols_[slot];
    }

    unsigned length() const
    {
        return static_cast<unsigned>(symbols_.size());
    }
    unsigned bitsPerSymbol() const { return symbolBits; }
    StreamSel stream() const { return stream_; }

    /** Total register cost in bits. */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(symbols_.size()) * symbolBits;
    }

    void
    reset()
    {
        for (auto &s : symbols_)
            s = 0;
        head_ = 0;
    }

    /** Serialize the ring (slots + head), so a restore reproduces the
     *  exact rotation state. */
    void
    saveState(util::StateWriter &writer) const
    {
        writer.writeVarint(symbols_.size());
        for (std::uint32_t s : symbols_)
            writer.writeU32(s);
        writer.writeVarint(head_);
    }

    /** Restore a saved ring; length must match this register's. */
    void
    loadState(util::StateReader &reader)
    {
        const std::uint64_t length = reader.readVarint();
        if (reader.ok() && length != symbols_.size()) {
            reader.fail("SymbolHistory length mismatch");
            return;
        }
        for (auto &s : symbols_)
            s = reader.readU32();
        const std::uint64_t head = reader.readVarint();
        if (reader.ok() && head >= symbols_.size()) {
            reader.fail("SymbolHistory head out of range");
            return;
        }
        head_ = static_cast<std::size_t>(head);
    }

  private:
    unsigned symbolBits;
    StreamSel stream_;
    std::vector<std::uint32_t> symbols_; ///< ring; head_ = most recent
    std::size_t head_ = 0;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_PATH_HISTORY_HH_
