/**
 * @file
 * Oracle path-history predictor.
 *
 * An idealized predictor with unbounded storage that remembers, for
 * every exact (branch pc, complete path-history window) context, the
 * most recently seen target.  The paper uses such an oracle to bound
 * the PIB predictability of photon ("complete PIB path history ...
 * 99.1% accuracy with a path length of 8"); we use it the same way and
 * to upper-bound every synthetic profile's path predictability.
 */

#ifndef IBP_PREDICTORS_ORACLE_HH_
#define IBP_PREDICTORS_ORACLE_HH_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Oracle configuration. */
struct OracleConfig
{
    unsigned pathLength = 8;                   ///< full targets kept
    StreamSel stream = StreamSel::MtIndirect;
    bool usePc = true; ///< include the branch pc in the context
};

/** Infinite-table exact-context predictor. */
class Oracle : public IndirectPredictor
{
  public:
    explicit Oracle(const OracleConfig &config, std::string name = "");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    /** Unbounded; reports the current table footprint. */
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

    /** No gated probes; the explicit no-op override records that as a
     *  deliberate choice (serde-coverage lint). */
    void snapshotProbes(obs::ProbeRegistry &registry) const override
    {
        (void)registry;
    }

    /** Number of distinct contexts seen so far. */
    std::size_t contexts() const { return table_.size(); }

  private:
    std::uint64_t contextKey(trace::Addr pc) const;

    OracleConfig config_;
    std::string name_;
    std::deque<trace::Addr> window_;
    std::unordered_map<std::uint64_t, trace::Addr> table_;
    std::uint64_t lastKey = 0;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_ORACLE_HH_
