/**
 * @file
 * Cascade predictor (Driesen & Holzle, MICRO '98).
 *
 * A small tagged filter stage sits in front of a dual-path hybrid.
 * Monomorphic and low-entropy branches are fully serviced by the
 * filter, which keeps them from polluting (and aliasing within) the
 * expensive path-indexed main tables.  The paper's Figure-6 Cascade is
 * a 128-entry leaky filter plus a Dpath with tagged 4-way PHTs of path
 * lengths 6 and 4.
 *
 * Filter protocols:
 *  - Leaky: the filter always trains; the main predictor trains only
 *    when the filter mispredicted the branch, so new branches "leak"
 *    into the main tables at their first filter miss.
 *  - Strict: the main predictor additionally requires the branch to
 *    have been proven polymorphic (its filter entry mispredicted
 *    before) before allocating.
 */

#ifndef IBP_PREDICTORS_CASCADE_HH_
#define IBP_PREDICTORS_CASCADE_HH_

#include <cstdint>
#include <string>

#include "util/table.hh"
#include "predictors/dpath.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Filter training protocol. */
enum class FilterMode : std::uint8_t { Leaky, Strict };

/** Cascade configuration. */
struct CascadeConfig
{
    std::size_t filterEntries = 128;
    std::size_t filterWays = 4;
    unsigned filterTagBits = 16;
    FilterMode mode = FilterMode::Leaky;
    DpathConfig main{
        // Tagged 4-way PHTs, path lengths 6 and 4, 960 entries each:
        // with the 128-entry filter this is the paper's 2K budget.
        {960, 24, 4, StreamSel::MtIndirect, true, 4, 12},
        {960, 24, 6, StreamSel::MtIndirect, true, 4, 12},
        1024,
    };
};

/** The two-stage Cascade. */
class Cascade final : public IndirectPredictor
{
  public:
    explicit Cascade(const CascadeConfig &config,
                     std::string name = "Cascade");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;

    /** Fused fast path: the filter way and the main-component slots
     *  resolved by predict() are consumed directly by update(), so
     *  each table is walked once per branch.  Bit-identical to split
     *  predict()+update(). */
    Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target) override
    {
        const Prediction predicted = Cascade::predict(pc);
        Cascade::update(pc, target);
        return predicted;
    }

    /** Replay lookahead: prefetch the filter set and the main
     *  predictor's lines for an upcoming @p pc. */
    void
    prefetchFor(trace::Addr pc) const
    {
        filter_.prefetchSet(filterSet(pc));
        main_.prefetchFor(pc);
    }

    void observe(const trace::BranchRecord &record) override;
    void snapshotProbes(obs::ProbeRegistry &registry) const override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;

    /** Fraction of predictions served by the filter (for analysis). */
    double filterServeRatio() const;

  private:
    struct FilterEntry
    {
        TargetEntry entry;
        bool provenPolymorphic = false;
    };

    std::uint64_t filterSet(trace::Addr pc) const;
    std::uint64_t filterTag(trace::Addr pc) const;

    CascadeConfig config_;
    std::string name_;
    util::AssocTable<FilterEntry> filter_;
    Dpath main_;

    Prediction lastFilter;
    Prediction lastMain;
    std::uint64_t servedByFilter = 0;
    std::uint64_t servedTotal = 0;

    // Filter slot resolved by the most recent predict(), consumed by
    // the next update() to skip re-hashing and the second tag scan.
    // Transient (never serialized): loadState()/reset() drop it so a
    // restored predictor rescans, exactly like the historical path.
    std::uint64_t lastFilterSet_ = 0;
    std::uint64_t lastFilterTag_ = 0;
    std::size_t lastFilterWay_ = 0;
    bool haveFilterSlot_ = false;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_CASCADE_HH_
