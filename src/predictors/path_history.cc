#include "predictors/path_history.hh"

namespace ibp::pred {

const char *
streamName(StreamSel stream)
{
    switch (stream) {
      case StreamSel::AllBranches:  return "PB";
      case StreamSel::AllIndirect:  return "IND";
      case StreamSel::MtIndirect:   return "PIB";
      case StreamSel::CallsReturns: return "CR";
    }
    return "?";
}

} // namespace ibp::pred
