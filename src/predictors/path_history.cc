#include "predictors/path_history.hh"

namespace ibp::pred {

const char *
streamName(StreamSel stream)
{
    switch (stream) {
      case StreamSel::AllBranches:  return "PB";
      case StreamSel::AllIndirect:  return "IND";
      case StreamSel::MtIndirect:   return "PIB";
      case StreamSel::CallsReturns: return "CR";
    }
    return "?";
}

bool
inStream(StreamSel stream, const trace::BranchRecord &record)
{
    using trace::BranchKind;
    switch (stream) {
      case StreamSel::AllBranches:
        return true;
      case StreamSel::AllIndirect:
        return trace::isIndirect(record.kind);
      case StreamSel::MtIndirect:
        return record.multiTarget &&
               (record.kind == BranchKind::IndirectJmp ||
                record.kind == BranchKind::IndirectCall);
      case StreamSel::CallsReturns:
        return record.kind == BranchKind::IndirectCall ||
               record.kind == BranchKind::Return;
    }
    return false;
}

} // namespace ibp::pred
