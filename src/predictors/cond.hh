/**
 * @file
 * Conditional-branch direction predictors.
 *
 * The paper's Section 3 develops PPM for conditional branches (after
 * Chen, Coffey & Mudge) before specializing it to indirect targets;
 * and its Section 1 motivation — fetch-stream quality on deeply
 * pipelined superscalars — involves the whole front end.  This module
 * provides the direction-predictor substrate used by the front-end
 * model (sim/frontend.hh): the classic bimodal table, a two-level
 * gshare, and an order-m PPM direction predictor built on the exact
 * frequency-count models of core/ppm_cond.hh (hashed per-branch, so it
 * is implementable, unlike the unbounded textbook form).
 */

#ifndef IBP_PREDICTORS_COND_HH_
#define IBP_PREDICTORS_COND_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sat_counter.hh"
#include "util/table.hh"
#include "trace/branch_record.hh"

namespace ibp::pred {

/** Abstract direction predictor for conditional branches. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Short display name. */
    virtual std::string name() const = 0;

    /** Predict taken/not-taken for the conditional at @p pc. */
    virtual bool predict(trace::Addr pc) = 0;

    /**
     * Train with the resolved direction.  Always called immediately
     * after predict() for the same branch.
     */
    virtual void update(trace::Addr pc, bool taken) = 0;

    /** Storage cost in bits. */
    virtual std::uint64_t storageBits() const = 0;

    virtual void reset() = 0;
};

/** Classic bimodal: a table of 2-bit counters indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 2048);

    std::string name() const override { return "bimodal"; }
    bool predict(trace::Addr pc) override;
    void update(trace::Addr pc, bool taken) override;
    std::uint64_t storageBits() const override;
    void reset() override;

  private:
    struct Entry
    {
        util::SatCounter counter{2, 2}; // weakly taken
    };
    util::DirectTable<Entry> table_;
};

/** Two-level gshare: global history XOR pc into 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    GsharePredictor(std::size_t entries = 2048,
                    unsigned history_bits = 11);

    std::string name() const override { return "gshare"; }
    bool predict(trace::Addr pc) override;
    void update(trace::Addr pc, bool taken) override;
    std::uint64_t storageBits() const override;
    void reset() override;

    std::uint64_t history() const { return history_; }

  private:
    struct Entry
    {
        util::SatCounter counter{2, 2};
    };
    std::uint64_t indexFor(trace::Addr pc) const;

    util::DirectTable<Entry> table_;
    unsigned historyBits;
    std::uint64_t history_ = 0;
    std::uint64_t lastIndex = 0;
};

/**
 * Order-m PPM direction predictor (paper Section 3 made
 * implementable): m+1 tables of 2-bit counters, table j indexed by a
 * hash of the pc and the last j global outcomes, probed highest order
 * first; a counter that has never been trained at that slot escapes
 * to the next lower order via a valid bit; update exclusion applies.
 */
class PpmDirectionPredictor : public DirectionPredictor
{
  public:
    /**
     * @param order   highest history length m
     * @param entries total counter budget across all orders
     */
    PpmDirectionPredictor(unsigned order = 8,
                          std::size_t entries = 2048);

    std::string name() const override { return "PPM-cond"; }
    bool predict(trace::Addr pc) override;
    void update(trace::Addr pc, bool taken) override;
    std::uint64_t storageBits() const override;
    void reset() override;

    /** Order that produced the last prediction (m..0). */
    unsigned lastOrder() const { return lastOrder_; }

  private:
    struct Entry
    {
        bool valid = false;
        util::SatCounter counter{2, 1};
    };

    std::uint64_t indexFor(trace::Addr pc, unsigned j) const;

    unsigned order_;
    std::vector<util::DirectTable<Entry>> tables_; ///< [0]=order m
    std::vector<std::uint64_t> lastIndices;
    std::uint64_t history_ = 0; ///< global outcome shift register
    unsigned lastOrder_ = 0;
};

/** Build a direction predictor by name ("bimodal", "gshare",
 *  "PPM-cond"); fatal() on unknown names. */
std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name);

} // namespace ibp::pred

#endif // IBP_PREDICTORS_COND_HH_
