/**
 * @file
 * Hashed-perceptron indirect-target predictor.
 *
 * Direction perceptrons (Jimenez & Lin) sum small signed weights
 * selected by hashes of the branch pc and global-history segments and
 * compare the sum against zero.  The indirect-target variant keeps a
 * small per-branch *candidate cache* of recently seen targets and
 * scores every cached candidate with a perceptron sum whose feature
 * hashes mix the candidate target in; the highest-scoring candidate is
 * the prediction.  Training nudges the actual target's weights up and
 * a wrongly chosen candidate's weights down, and — the perceptron
 * trick — also trains on low-margin correct predictions, so weights
 * keep growing until the margin clears a threshold.
 *
 * Features split between the paper's two history kinds: half the
 * weight tables hash segments of a PIB (indirect-target) register and
 * half hash segments of a PB (all-branches) register, mirroring the
 * PB/PIB hybrid insight of the source paper.  Like ITTAGE this is a
 * post-1998 baseline, present so fig6 compares the paper's lineup
 * against what came later at the same hardware budget.
 */

#ifndef IBP_PREDICTORS_PERCEPTRON_INDIRECT_HH_
#define IBP_PREDICTORS_PERCEPTRON_INDIRECT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitops.hh"
#include "util/probe.hh"
#include "util/table.hh"
#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Configuration of one hashed-perceptron indirect predictor. */
struct PerceptronIndirectConfig
{
    std::size_t candidateSets = 256;  ///< candidate-cache geometry
    std::size_t candidateWays = 4;
    unsigned candidateTagBits = 12;   ///< folded-target partial tag
    std::size_t numTables = 8;        ///< weight tables (even: PIB+PB)
    std::size_t entriesPerTable = 512;
    unsigned weightBits = 8;          ///< signed weight width
    int trainingThreshold = 16;       ///< train-on-low-margin bound
    unsigned pibHistoryBits = 32;     ///< indirect-target register
    unsigned pibBitsPerTarget = 4;
    unsigned pbHistoryBits = 48;      ///< all-branches register
    unsigned pbBitsPerTarget = 2;
};

/** Hashed-perceptron target selection over a candidate cache. */
class PerceptronIndirect : public IndirectPredictor
{
  public:
    explicit PerceptronIndirect(const PerceptronIndirectConfig &config,
                                std::string name = "Perceptron");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;
    void snapshotProbes(obs::ProbeRegistry &registry) const override;

    /** Perceptron score of @p target for @p pc under the current
     *  weights and histories (for tests; touches nothing). */
    int score(trace::Addr pc, trace::Addr target) const;

    /** The weight table row @p table consults for (pc, target) under
     *  the current histories (for tests). */
    std::uint64_t featureIndex(std::size_t table, trace::Addr pc,
                               trace::Addr target) const;

    /** Largest representable weight magnitude. */
    int maxWeight() const { return maxWeight_; }

  private:
    std::uint64_t candidateSet(trace::Addr pc) const;
    std::uint64_t candidateTag(trace::Addr target) const;
    void adjustWeights(trace::Addr pc, trace::Addr target, int delta);

    PerceptronIndirectConfig config_;
    std::string name_;
    int maxWeight_;
    ShiftHistory pibHistory_;
    ShiftHistory pbHistory_;
    util::AssocTable<TargetEntry> candidates_;
    std::vector<util::DirectTable<std::int8_t>> weights_;
    util::Counter weightUpdates_;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_PERCEPTRON_INDIRECT_HH_
