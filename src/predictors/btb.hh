/**
 * @file
 * Branch Target Buffer baselines.
 *
 * BTB: a tagless table of most-recent targets indexed by branch pc;
 * the predicted target is replaced on every mispredict (Lee & Smith).
 *
 * BTB2b: the Calder & Grunwald refinement — a 2-bit up/down counter
 * per entry delays target replacement until two consecutive
 * mispredictions, exploiting the target locality of C++ virtual calls.
 */

#ifndef IBP_PREDICTORS_BTB_HH_
#define IBP_PREDICTORS_BTB_HH_

#include <cstdint>
#include <string>

#include "predictors/predictor.hh"
#include "util/bitops.hh"
#include "util/table.hh"

namespace ibp::pred {

/** Tagless most-recent-target BTB. */
class Btb : public IndirectPredictor
{
  public:
    /** @param entries table size (any positive count). */
    explicit Btb(std::size_t entries);

    std::string name() const override { return "BTB"; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;

  private:
    struct Entry
    {
        bool valid = false;
        trace::Addr target = 0;
    };

    std::uint64_t indexFor(trace::Addr pc) const;

    util::DirectTable<Entry> table_;
};

/** Tagless BTB with 2-bit replacement hysteresis. */
class Btb2b : public IndirectPredictor
{
  public:
    explicit Btb2b(std::size_t entries);

    std::string name() const override { return "BTB2b"; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;

  private:
    std::uint64_t indexFor(trace::Addr pc) const;

    util::DirectTable<TargetEntry> table_;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_BTB_HH_
