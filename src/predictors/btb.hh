/**
 * @file
 * Branch Target Buffer baselines.
 *
 * BTB: a tagless table of most-recent targets indexed by branch pc;
 * the predicted target is replaced on every mispredict (Lee & Smith).
 *
 * BTB2b: the Calder & Grunwald refinement — a 2-bit up/down counter
 * per entry delays target replacement until two consecutive
 * mispredictions, exploiting the target locality of C++ virtual calls.
 */

#ifndef IBP_PREDICTORS_BTB_HH_
#define IBP_PREDICTORS_BTB_HH_

#include <cstdint>
#include <string>

#include "util/bitops.hh"
#include "util/table.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/**
 * Tagless most-recent-target BTB.  Final, with the per-branch
 * operations defined inline: the replay engine's devirtualized fast
 * path (sim/engine.cc) folds them straight into its loop.
 */
class Btb final : public IndirectPredictor
{
  public:
    /** @param entries table size (any positive count). */
    explicit Btb(std::size_t entries);

    std::string name() const override { return "BTB"; }

    Prediction
    predict(trace::Addr pc) override
    {
        const Entry &entry = table_.at(indexFor(pc));
        return {entry.valid, entry.target};
    }

    void
    update(trace::Addr pc, trace::Addr target) override
    {
        Entry &entry = table_.at(indexFor(pc));
        IBP_PROBE(if (entry.valid && entry.target != target)
                      replacements_.bump();)
        entry.valid = true;
        entry.target = target;
    }

    /** Fused path: predict and update share the slot, so locate it
     *  once.  State after the call is identical to predict();update()
     *  — both resolve the same index for the same pc. */
    Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target) override
    {
        Entry &entry = table_.at(indexFor(pc));
        const Prediction prediction{entry.valid, entry.target};
        IBP_PROBE(if (entry.valid && entry.target != target)
                      replacements_.bump();)
        entry.valid = true;
        entry.target = target;
        return prediction;
    }

    void observe(const trace::BranchRecord &record) override;
    bool wantsObserve() const override { return false; }
    void snapshotProbes(obs::ProbeRegistry &registry) const override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;

  private:
    struct Entry
    {
        bool valid = false;
        trace::Addr target = 0;
    };

    std::uint64_t
    indexFor(trace::Addr pc) const
    {
        return table_.reduce(pc >> 2);
    }

    util::DirectTable<Entry> table_;
    /** Target overwrites of a live entry — DirectTable is tagless, so
     *  this is the direct-mapped analogue of a tagged conflict miss:
     *  either the branch changed targets or another branch aliased
     *  into the slot. */
    util::Counter replacements_;
};

/** Tagless BTB with 2-bit replacement hysteresis (final + inline for
 *  the same devirtualized replay path as Btb). */
class Btb2b final : public IndirectPredictor
{
  public:
    explicit Btb2b(std::size_t entries);

    std::string name() const override { return "BTB2b"; }

    Prediction
    predict(trace::Addr pc) override
    {
        const TargetEntry &entry = table_.at(indexFor(pc));
        return {entry.valid, entry.target};
    }

    void
    update(trace::Addr pc, trace::Addr target) override
    {
        TargetEntry &entry = table_.at(indexFor(pc));
        IBP_PROBE(const trace::Addr before = entry.target;
                  const bool was_valid = entry.valid;)
        entry.train(target);
        IBP_PROBE(if (was_valid && entry.target != before)
                      replacements_.bump();)
    }

    /** Fused path: one slot resolution for the read and the train. */
    Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target) override
    {
        TargetEntry &entry = table_.at(indexFor(pc));
        const Prediction prediction{entry.valid, entry.target};
        entry.train(target);
        IBP_PROBE(if (prediction.valid && entry.target != prediction.target)
                      replacements_.bump();)
        return prediction;
    }

    void observe(const trace::BranchRecord &record) override;
    bool wantsObserve() const override { return false; }
    void snapshotProbes(obs::ProbeRegistry &registry) const override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;

  private:
    std::uint64_t
    indexFor(trace::Addr pc) const
    {
        return table_.reduce(pc >> 2);
    }

    util::DirectTable<TargetEntry> table_;
    /** Hysteresis-approved target replacements of live entries. */
    util::Counter replacements_;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_BTB_HH_
