#include "predictors/perceptron_indirect.hh"

#include "util/logging.hh"

namespace ibp::pred {

PerceptronIndirect::PerceptronIndirect(
    const PerceptronIndirectConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      maxWeight_((1 << (config.weightBits - 1)) - 1),
      pibHistory_(config.pibHistoryBits, config.pibBitsPerTarget,
                  StreamSel::MtIndirect),
      pbHistory_(config.pbHistoryBits, config.pbBitsPerTarget,
                 StreamSel::AllBranches),
      candidates_(config.candidateSets, config.candidateWays)
{
    fatal_if(config.numTables < 2 || config.numTables % 2 != 0,
             "perceptron needs an even table count (PIB + PB halves)");
    fatal_if(config.entriesPerTable == 0,
             "perceptron needs non-empty weight tables");
    fatal_if(config.weightBits < 2 || config.weightBits > 8,
             "perceptron weight width out of range");
    fatal_if(config.trainingThreshold < 0,
             "perceptron threshold must be non-negative");
    fatal_if(config.candidateTagBits < 2 || config.candidateTagBits > 30,
             "perceptron candidate tag width out of range");
    weights_.reserve(config.numTables);
    for (std::size_t i = 0; i < config.numTables; ++i)
        weights_.emplace_back(config.entriesPerTable);
}

std::uint64_t
PerceptronIndirect::candidateSet(trace::Addr pc) const
{
    const std::uint64_t addr = pc >> 2;
    return candidates_.reduce(addr ^ (addr >> 9));
}

std::uint64_t
PerceptronIndirect::candidateTag(trace::Addr target) const
{
    return util::foldXor(target >> 2, 40, config_.candidateTagBits);
}

std::uint64_t
PerceptronIndirect::featureIndex(std::size_t table, trace::Addr pc,
                                 trace::Addr target) const
{
    // Half the tables read PIB-register segments, half PB-register
    // segments; every hash mixes the pc and a fold of the candidate
    // target so the same weights discriminate between candidates.
    const std::size_t half = config_.numTables / 2;
    const bool pib = table < half;
    const ShiftHistory &history = pib ? pibHistory_ : pbHistory_;
    const std::size_t lane = pib ? table : table - half;
    const unsigned segmentBits =
        history.bits() / static_cast<unsigned>(half);
    const std::uint64_t segment = util::bitsRange(
        history.value(), static_cast<unsigned>(lane) * segmentBits,
        segmentBits);
    const std::uint64_t folded =
        util::foldXor(target >> 2, 40, 16);
    const std::uint64_t hash = (pc >> 2) ^ (segment << 1) ^ folded ^
                               (table * 0x9E37ull);
    return weights_[table].reduce(hash);
}

int
PerceptronIndirect::score(trace::Addr pc, trace::Addr target) const
{
    int sum = 0;
    for (std::size_t i = 0; i < config_.numTables; ++i)
        sum += weights_[i].at(featureIndex(i, pc, target));
    return sum;
}

Prediction
PerceptronIndirect::predict(trace::Addr pc)
{
    // Pure scan: no LRU touch, no transient slot — update() recomputes
    // the same candidates because histories only advance in observe().
    const std::uint64_t set = candidateSet(pc);
    Prediction best;
    int bestScore = 0;
    for (std::size_t way = 0; way < candidates_.ways(); ++way) {
        const TargetEntry &candidate = candidates_.wayEntry(set, way);
        if (!candidate.valid)
            continue;
        const int sum = score(pc, candidate.target);
        // Strict comparison: ties resolve to the lowest way, keeping
        // the choice deterministic under replay.
        if (!best.valid || sum > bestScore) {
            best = {true, candidate.target};
            bestScore = sum;
        }
    }
    return best;
}

void
PerceptronIndirect::adjustWeights(trace::Addr pc, trace::Addr target,
                                  int delta)
{
    for (std::size_t i = 0; i < config_.numTables; ++i) {
        std::int8_t &weight =
            weights_[i].at(featureIndex(i, pc, target));
        int adjusted = weight + delta;
        // Saturate symmetrically so +w and -w training are mirrors.
        if (adjusted > maxWeight_)
            adjusted = maxWeight_;
        if (adjusted < -maxWeight_)
            adjusted = -maxWeight_;
        weight = static_cast<std::int8_t>(adjusted);
    }
    weightUpdates_.bump();
}

void
PerceptronIndirect::update(trace::Addr pc, trace::Addr target)
{
    const Prediction prediction = predict(pc);
    const bool mispredict =
        !prediction.valid || prediction.target != target;

    // Perceptron rule: train on every mispredict, and on correct
    // predictions whose margin is still below the threshold.
    if (mispredict || score(pc, target) < config_.trainingThreshold) {
        adjustWeights(pc, target, +1);
        if (prediction.valid && prediction.target != target)
            adjustWeights(pc, prediction.target, -1);
    }

    // Keep the candidate cache warm: promote the actual target to MRU
    // or install it over the LRU way.
    const std::uint64_t set = candidateSet(pc);
    const std::uint64_t tag = candidateTag(target);
    if (TargetEntry *entry = candidates_.lookup(set, tag)) {
        entry->train(target);
    } else {
        TargetEntry fresh;
        fresh.train(target);
        candidates_.insert(set, tag, fresh);
    }
}

void
PerceptronIndirect::observe(const trace::BranchRecord &record)
{
    pibHistory_.observe(record);
    pbHistory_.observe(record);
}

std::uint64_t
PerceptronIndirect::storageBits() const
{
    const std::uint64_t candidateBits =
        candidates_.size() *
        (TargetEntry::bits() + config_.candidateTagBits);
    std::uint64_t weightTableBits = 0;
    for (const auto &table : weights_)
        weightTableBits += table.size() * config_.weightBits;
    return candidateBits + weightTableBits + pibHistory_.bits() +
           pbHistory_.bits();
}

void
PerceptronIndirect::reset()
{
    pibHistory_.reset();
    pbHistory_.reset();
    candidates_.reset();
    for (auto &table : weights_)
        table.reset();
    weightUpdates_.reset();
}

namespace {

void
saveWeight(util::StateWriter &writer, const std::int8_t &weight)
{
    writer.writeU8(static_cast<std::uint8_t>(weight));
}

} // namespace

void
PerceptronIndirect::saveState(util::StateWriter &writer) const
{
    pibHistory_.saveState(writer);
    pbHistory_.saveState(writer);
    candidates_.saveState(writer, saveTargetEntry);
    writer.writeVarint(weights_.size());
    for (const auto &table : weights_)
        table.saveState(writer, saveWeight);
}

void
PerceptronIndirect::loadState(util::StateReader &reader)
{
    pibHistory_.loadState(reader);
    pbHistory_.loadState(reader);
    candidates_.loadState(reader, loadTargetEntry);
    const std::uint64_t tables = reader.readVarint();
    if (reader.ok() && tables != weights_.size()) {
        reader.fail("perceptron weight-table count mismatch");
        return;
    }
    const int bound = maxWeight_;
    for (auto &table : weights_) {
        table.loadState(reader, [bound](util::StateReader &in,
                                        std::int8_t &weight) {
            const auto raw =
                static_cast<std::int8_t>(in.readU8());
            if (in.ok() && (raw > bound || raw < -bound)) {
                in.fail("perceptron weight out of range");
                return;
            }
            weight = raw;
        });
    }
}

void
PerceptronIndirect::saveProbes(util::StateWriter &writer) const
{
    writer.writeU64(weightUpdates_.value());
    candidates_.saveProbes(writer);
}

void
PerceptronIndirect::loadProbes(util::StateReader &reader)
{
    weightUpdates_.set(reader.readU64());
    candidates_.loadProbes(reader);
}

void
PerceptronIndirect::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("perceptron/weight_updates", weightUpdates_);
    registry.counter("perceptron/candidate_evictions",
                     candidates_.evictions());
    registry.counter("perceptron/candidate_conflicts",
                     candidates_.conflictMisses());
}

} // namespace ibp::pred
