/**
 * @file
 * Return Address Stack (Kaeli & Emma).
 *
 * Subroutine returns are indirect branches with perfectly structured
 * history: the matching call pushed the correct target.  The paper
 * excludes `ret` from the indirect-predictor workload because a RAS
 * predicts it accurately; this implementation lets the simulation
 * engine demonstrate that claim and report return accuracy separately.
 */

#ifndef IBP_PREDICTORS_RAS_HH_
#define IBP_PREDICTORS_RAS_HH_

#include <cstdint>
#include <vector>

#include "util/probe.hh"
#include "util/serde.hh"
#include "trace/branch_record.hh"

namespace ibp::pred {

/** Fixed-depth circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t depth = 16);

    /** Push the return address of a call.  Inline: the replay engine
     *  calls this for every call-class record in the trace. */
    void
    push(trace::Addr return_addr)
    {
        IBP_PROBE(if (live_ == stack_.size()) overflows_.bump();)
        stack_[top_] = return_addr;
        // top_ < size always holds, so wrap is a compare, not a divide.
        top_ = top_ + 1 == stack_.size() ? 0 : top_ + 1;
        if (live_ < stack_.size())
            ++live_;
    }

    /**
     * Pop and return the predicted return target (inline, same hot
     * path as push()).
     * @param predicted out-parameter with the popped address
     * @retval false the stack was empty (no prediction)
     */
    bool
    pop(trace::Addr &predicted)
    {
        if (live_ == 0) {
            underflows_.bump();
            return false;
        }
        top_ = (top_ == 0 ? stack_.size() : top_) - 1;
        predicted = stack_[top_];
        --live_;
        return true;
    }

    /** Current number of live entries (<= depth). */
    std::size_t size() const { return live_; }
    std::size_t depth() const { return stack_.size(); }
    bool empty() const { return live_ == 0; }

    /** Storage cost in bits. */
    std::uint64_t
    storageBits() const
    {
        return stack_.size() * 64;
    }

    /** Pushes that overwrote the oldest live entry (probes only). */
    std::uint64_t overflows() const { return overflows_.value(); }
    /** Pops from an empty stack, i.e. no-prediction returns. */
    std::uint64_t underflows() const { return underflows_.value(); }

    void reset();

    /** Serialize the full ring (slots + cursor + live count). */
    void
    saveState(util::StateWriter &writer) const
    {
        writer.writeVarint(stack_.size());
        for (trace::Addr addr : stack_)
            writer.writeU64(addr);
        writer.writeVarint(top_);
        writer.writeVarint(live_);
    }

    /** Restore a saved ring; the depth must match this stack's. */
    void
    loadState(util::StateReader &reader)
    {
        const std::uint64_t depth = reader.readVarint();
        if (reader.ok() && depth != stack_.size()) {
            reader.fail("RAS depth mismatch");
            return;
        }
        for (auto &addr : stack_)
            addr = reader.readU64();
        const std::uint64_t top = reader.readVarint();
        const std::uint64_t live = reader.readVarint();
        if (reader.ok() &&
            (top >= stack_.size() || live > stack_.size())) {
            reader.fail("RAS cursor out of range");
            return;
        }
        top_ = static_cast<std::size_t>(top);
        live_ = static_cast<std::size_t>(live);
    }

    /** Probe counters (fixed-width; see IndirectPredictor contract). */
    void
    saveProbes(util::StateWriter &writer) const
    {
        writer.writeU64(overflows_.value());
        writer.writeU64(underflows_.value());
    }

    void
    loadProbes(util::StateReader &reader)
    {
        overflows_.set(reader.readU64());
        underflows_.set(reader.readU64());
    }

  private:
    std::vector<trace::Addr> stack_;
    std::size_t top_ = 0;  ///< index of the next free slot
    std::size_t live_ = 0; ///< valid entries (saturates at depth)
    util::Counter overflows_;
    util::Counter underflows_;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_RAS_HH_
