#include "predictors/ras.hh"

#include "util/logging.hh"

namespace ibp::pred {

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    panic_if(depth == 0, "RAS needs depth >= 1");
}

void
ReturnAddressStack::push(trace::Addr return_addr)
{
    stack_[top_] = return_addr;
    top_ = (top_ + 1) % stack_.size();
    if (live_ < stack_.size())
        ++live_;
}

bool
ReturnAddressStack::pop(trace::Addr &predicted)
{
    if (live_ == 0)
        return false;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    predicted = stack_[top_];
    --live_;
    return true;
}

void
ReturnAddressStack::reset()
{
    top_ = 0;
    live_ = 0;
}

} // namespace ibp::pred
