#include "predictors/ras.hh"

#include "util/logging.hh"

namespace ibp::pred {

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    panic_if(depth == 0, "RAS needs depth >= 1");
}

void
ReturnAddressStack::reset()
{
    top_ = 0;
    live_ = 0;
}

} // namespace ibp::pred
