#include "predictors/ras.hh"

#include "util/logging.hh"

namespace ibp::pred {

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    panic_if(depth == 0, "RAS needs depth >= 1");
}

void
ReturnAddressStack::reset()
{
    top_ = 0;
    live_ = 0;
    overflows_.reset();
    underflows_.reset();
}

} // namespace ibp::pred
