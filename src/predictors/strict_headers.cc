/**
 * @file
 * Strict-warning coverage for the header-only parts of predictors/.
 *
 * The IBP_WERROR gate (-Werror -Wshadow -Wconversion -Wold-style-cast)
 * applies to the translation units of this library; headers that no
 * .cc file happens to include would escape it.  This TU includes every
 * predictors header so the whole layer is compiled under the strict
 * set.
 */

#include "predictors/btb.hh"
#include "predictors/cascade.hh"
#include "predictors/cond.hh"
#include "predictors/dpath.hh"
#include "predictors/gap.hh"
#include "predictors/ittage.hh"
#include "predictors/oracle.hh"
#include "predictors/path_history.hh"
#include "predictors/perceptron_indirect.hh"
#include "predictors/predictor.hh"
#include "predictors/ras.hh"
#include "predictors/target_cache.hh"
