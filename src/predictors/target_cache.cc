#include "predictors/target_cache.hh"

#include "util/logging.hh"

namespace ibp::pred {

TargetCache::TargetCache(const TargetCacheConfig &config, std::string name)
    : config_(config),
      name_(name.empty()
                ? std::string("TC-") + streamName(config.stream)
                : std::move(name)),
      history_(config.historyBits, config.bitsPerTarget, config.stream),
      table_(config.entries)
{
    fatal_if(config.entries == 0, "TargetCache needs entries");
}

Prediction
TargetCache::predict(trace::Addr pc)
{
    lastIndex = table_.reduce((pc >> 2) ^ history_.value());
    const Entry &entry = table_.at(lastIndex);
    return {entry.valid, entry.target};
}

void
TargetCache::update(trace::Addr pc, trace::Addr target)
{
    (void)pc;
    Entry &entry = table_.at(lastIndex);
    entry.valid = true;
    entry.target = target;
}

void
TargetCache::observe(const trace::BranchRecord &record)
{
    history_.observe(record);
}

std::uint64_t
TargetCache::storageBits() const
{
    return table_.size() * (1 + 64) + history_.bits();
}

void
TargetCache::reset()
{
    history_.reset();
    table_.reset();
    lastIndex = 0;
}

void
TargetCache::saveState(util::StateWriter &writer) const
{
    history_.saveState(writer);
    table_.saveState(writer, [](util::StateWriter &w, const Entry &e) {
        w.writeBool(e.valid);
        w.writeU64(e.target);
    });
    writer.writeU64(lastIndex);
}

void
TargetCache::loadState(util::StateReader &reader)
{
    history_.loadState(reader);
    table_.loadState(reader, [](util::StateReader &r, Entry &e) {
        e.valid = r.readBool();
        e.target = r.readU64();
    });
    lastIndex = reader.readU64();
    if (reader.ok() && lastIndex >= table_.size())
        reader.fail("TargetCache last index out of range");
}

} // namespace ibp::pred
