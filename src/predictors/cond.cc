#include "predictors/cond.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ibp::pred {

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries)
{
}

bool
BimodalPredictor::predict(trace::Addr pc)
{
    return table_.at(table_.reduce(pc >> 2)).counter.high();
}

void
BimodalPredictor::update(trace::Addr pc, bool taken)
{
    auto &counter = table_.at(table_.reduce(pc >> 2)).counter;
    if (taken)
        counter.increment();
    else
        counter.decrement();
}

std::uint64_t
BimodalPredictor::storageBits() const
{
    return table_.size() * 2;
}

void
BimodalPredictor::reset()
{
    table_.reset();
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : table_(entries), historyBits(history_bits)
{
    panic_if(history_bits == 0 || history_bits > 32,
             "gshare history width out of range");
}

std::uint64_t
GsharePredictor::indexFor(trace::Addr pc) const
{
    return table_.reduce((pc >> 2) ^ history_);
}

bool
GsharePredictor::predict(trace::Addr pc)
{
    lastIndex = indexFor(pc);
    return table_.at(lastIndex).counter.high();
}

void
GsharePredictor::update(trace::Addr pc, bool taken)
{
    (void)pc;
    auto &counter = table_.at(lastIndex).counter;
    if (taken)
        counter.increment();
    else
        counter.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               util::maskLow(historyBits);
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return table_.size() * 2 + historyBits;
}

void
GsharePredictor::reset()
{
    table_.reset();
    history_ = 0;
    lastIndex = 0;
}

PpmDirectionPredictor::PpmDirectionPredictor(unsigned order,
                                             std::size_t entries)
    : order_(order)
{
    fatal_if(order == 0 || order > 32,
             "PPM-cond order out of range: ", order);
    // Geometric split like the indirect PPM: order j gets a share
    // proportional to 2^j, normalized to the entry budget.
    std::uint64_t weight_total = 0;
    for (unsigned j = 1; j <= order; ++j)
        weight_total += std::uint64_t{1} << j;
    tables_.reserve(order);
    for (unsigned i = 0; i < order; ++i) {
        const unsigned j = order - i;
        const auto share = std::max<std::size_t>(
            2, entries * (std::uint64_t{1} << j) / weight_total);
        tables_.emplace_back(share);
    }
    lastIndices.resize(order, 0);
}

std::uint64_t
PpmDirectionPredictor::indexFor(trace::Addr pc, unsigned j) const
{
    // Hash the last j outcomes with the pc; unlike the indirect
    // predictor, the pc is essential here (a direction history alone
    // says nothing about which branch is predicted).
    const std::uint64_t pattern =
        history_ & util::maskLow(j);
    std::uint64_t h = (pc >> 2) ^ (pattern * 0x9e3779b97f4a7c15ULL);
    h ^= h >> 29;
    return h;
}

bool
PpmDirectionPredictor::predict(trace::Addr pc)
{
    lastOrder_ = 0;
    bool outcome = true;
    bool decided = false;
    for (unsigned i = 0; i < order_; ++i) {
        const unsigned j = order_ - i;
        lastIndices[i] = tables_[i].reduce(indexFor(pc, j));
        if (decided)
            continue;
        const Entry &entry = tables_[i].at(lastIndices[i]);
        if (!entry.valid)
            continue;
        outcome = entry.counter.high();
        lastOrder_ = j;
        decided = true;
    }
    return outcome;
}

void
PpmDirectionPredictor::update(trace::Addr pc, bool taken)
{
    (void)pc;
    // Update exclusion across the orders (paper Section 3).
    for (unsigned i = 0; i < order_; ++i) {
        const unsigned j = order_ - i;
        if (j < lastOrder_)
            break;
        Entry &entry = tables_[i].at(lastIndices[i]);
        entry.valid = true;
        if (taken)
            entry.counter.increment();
        else
            entry.counter.decrement();
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

std::uint64_t
PpmDirectionPredictor::storageBits() const
{
    std::uint64_t bits = order_; // history register
    for (const auto &table : tables_)
        bits += table.size() * 3; // valid + 2-bit counter
    return bits;
}

void
PpmDirectionPredictor::reset()
{
    for (auto &table : tables_)
        table.reset();
    history_ = 0;
    lastOrder_ = 0;
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name)
{
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "PPM-cond")
        return std::make_unique<PpmDirectionPredictor>();
    fatal("unknown direction predictor: ", name);
}

} // namespace ibp::pred
