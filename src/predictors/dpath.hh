/**
 * @file
 * Dual-path hybrid predictor (Driesen & Holzle, ISCA '98).
 *
 * Two two-level components with different path lengths (one short, one
 * long) share a table of 2-bit selection counters indexed by branch
 * pc.  Components use reverse-interleaving indexing of a 24-bit path
 * register.  The paper's Figure-6 Dpath uses tagless 1K-entry PHTs
 * with path lengths 1 and 3; the Cascade predictor reuses the same
 * component with tagged 4-way set-associative PHTs (path lengths 6
 * and 4).
 */

#ifndef IBP_PREDICTORS_DPATH_HH_
#define IBP_PREDICTORS_DPATH_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sat_counter.hh"
#include "util/table.hh"
#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** One two-level path component (a GAp with selectable indexing). */
struct PathComponentConfig
{
    std::size_t entries = 1024;
    unsigned historyBits = 24;
    unsigned bitsPerTarget = 24; ///< path length = history/bitsPerTarget
    StreamSel stream = StreamSel::MtIndirect;
    bool tagged = false;
    std::size_t ways = 4;  ///< associativity when tagged
    unsigned tagBits = 12; ///< tag width when tagged
};

/**
 * A single path-indexed target table.  With @c tagged=false it is a
 * tagless direct-mapped PHT; with @c tagged=true it is a set-
 * associative tagged PHT with true LRU, and predictions are only
 * produced on a tag hit.
 */
class PathComponent
{
  public:
    explicit PathComponent(const PathComponentConfig &config);

    /** Look up; caches the slot for the following update(). */
    Prediction predict(trace::Addr pc);

    /**
     * Train with the resolved target at the slot captured by the
     * preceding predict().
     * @param allocate tagged tables only: insert on tag miss
     */
    void update(trace::Addr target, bool allocate);

    /** Pull the table line @p pc's next access will touch into cache
     *  (replay lookahead; no architectural effect).  Exact when the
     *  path history already reflects every record before @p pc. */
    void prefetch(trace::Addr pc) const;

    void observe(const trace::BranchRecord &record);
    std::uint64_t storageBits() const;
    void reset();
    void saveState(util::StateWriter &writer) const;
    void loadState(util::StateReader &reader);
    void saveProbes(util::StateWriter &writer) const;
    void loadProbes(util::StateReader &reader);

    const ShiftHistory &history() const { return history_; }

  private:
    std::uint64_t indexHash(trace::Addr pc) const;
    std::uint64_t tagHash(trace::Addr pc) const;

    PathComponentConfig config_;
    ShiftHistory history_;
    util::DirectTable<TargetEntry> direct_;
    util::AssocTable<TargetEntry> assoc_;

    // Per-byte lookup tables for the across-targets interleave of the
    // path register: acrossLut_[b][v] is the interleaved image of
    // history byte b holding value v.  Built once from the geometry in
    // the constructor; OR-ing one entry per history byte replaces the
    // historical bit-at-a-time double loop on every index hash.
    std::vector<std::array<std::uint32_t, 256>> acrossLut_;

    // Slot captured at predict time for the follow-up update.
    std::uint64_t lastIndex = 0;
    std::uint64_t lastSet = 0;
    std::uint64_t lastTag = 0;
    // Way resolved by the most recent predict(), consumed by the next
    // update() to skip the second tag scan.  Transient (never
    // serialized): loadState()/reset() drop it so a restored component
    // falls back to the full scan, exactly like the historical path.
    std::size_t lastWay_ = 0;
    bool haveSlot_ = false;
};

/** Dual-path hybrid configuration. */
struct DpathConfig
{
    PathComponentConfig shortPath{
        1024, 24, 24, StreamSel::MtIndirect, false, 4, 12};
    PathComponentConfig longPath{
        1024, 24, 8, StreamSel::MtIndirect, false, 4, 12};
    std::size_t selectorEntries = 1024;
};

/** The dual-path hybrid. */
class Dpath final : public IndirectPredictor
{
  public:
    explicit Dpath(const DpathConfig &config, std::string name = "Dpath");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;

    /** Fused fast path: one table walk per component per branch (the
     *  slot each predict() resolves is handed straight to update()).
     *  Bit-identical to split predict()+update(). */
    Prediction
    predictAndUpdate(trace::Addr pc, trace::Addr target) override
    {
        const Prediction predicted = Dpath::predict(pc);
        Dpath::update(pc, target);
        return predicted;
    }

    /** Replay lookahead: prefetch both components' lines and the
     *  selector row for an upcoming @p pc. */
    void
    prefetchFor(trace::Addr pc) const
    {
        short_.prefetch(pc);
        long_.prefetch(pc);
        selector_.prefetchEntry(selector_.reduce(pc >> 2));
    }

    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;

    /**
     * Train without allocating new tagged entries (the Cascade filter
     * protocol calls this when the filter already handled the branch).
     */
    void updateWithAllocate(trace::Addr pc, trace::Addr target,
                            bool allocate);

    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;
    void saveProbes(util::StateWriter &writer) const override;
    void loadProbes(util::StateReader &reader) override;

    /** No gated probes yet (the component predictors keep their own);
     *  the explicit no-op override records that as a deliberate choice
     *  (serde-coverage lint). */
    void snapshotProbes(obs::ProbeRegistry &registry) const override
    {
        (void)registry;
    }

  private:
    struct Selector
    {
        util::SatCounter counter{2, 1};
    };

    DpathConfig config_;
    std::string name_;
    PathComponent short_;
    PathComponent long_;
    util::DirectTable<Selector> selector_;

    Prediction lastShort;
    Prediction lastLong;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_DPATH_HH_
