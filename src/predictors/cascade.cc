#include "predictors/cascade.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ibp::pred {

Cascade::Cascade(const CascadeConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      filter_(std::max<std::size_t>(1,
                                    config.filterEntries /
                                        config.filterWays),
              config.filterWays),
      main_(config.main, "Cascade-main")
{
    fatal_if(config.filterEntries % config.filterWays != 0,
             "Cascade filter entries must be a multiple of ways");
}

std::uint64_t
Cascade::filterSet(trace::Addr pc) const
{
    return filter_.reduce(pc >> 2);
}

std::uint64_t
Cascade::filterTag(trace::Addr pc) const
{
    return util::foldXor(pc >> 2, 48, config_.filterTagBits);
}

Prediction
Cascade::predict(trace::Addr pc)
{
    // Resolve the filter slot once and cache it for the paired
    // update(); findWay + touchWay/noteLookupMiss is the exact split
    // of what lookup() does.
    lastFilterSet_ = filterSet(pc);
    lastFilterTag_ = filterTag(pc);
    lastFilterWay_ = filter_.findWay(lastFilterSet_, lastFilterTag_);
    haveFilterSlot_ = true;
    const FilterEntry *fentry = nullptr;
    if (lastFilterWay_ == util::AssocTable<FilterEntry>::kNoWay) {
        filter_.noteLookupMiss(lastFilterSet_);
    } else {
        filter_.touchWay(lastFilterSet_, lastFilterWay_);
        fentry = &filter_.wayEntry(lastFilterSet_, lastFilterWay_);
    }
    lastFilter = fentry ? Prediction{fentry->entry.valid,
                                     fentry->entry.target}
                        : Prediction{};
    // A saturated hysteresis counter on a branch never yet caught
    // mispredicting marks a monomorphic/low-entropy branch: the
    // filter keeps serving it, isolating it from the path-indexed
    // main tables.  Proven-polymorphic branches always defer to the
    // main predictor.
    const bool filter_confident =
        fentry && !fentry->provenPolymorphic &&
        fentry->entry.counter.saturatedHigh();
    lastMain = main_.predict(pc);

    ++servedTotal;
    if (filter_confident) {
        ++servedByFilter;
        return lastFilter;
    }
    if (lastMain.valid)
        return lastMain;
    ++servedByFilter;
    return lastFilter;
}

void
Cascade::update(trace::Addr pc, trace::Addr target)
{
    const bool filter_right = lastFilter.hit(target);

    // Stage 1: the filter always learns.  Consume the slot predict()
    // resolved (nothing inserts into the filter between a predict and
    // its update, so the cached way and a rescan are interchangeable);
    // fall back to a fresh scan after a checkpoint restore.
    std::uint64_t set;
    std::uint64_t tag;
    std::size_t way;
    if (haveFilterSlot_) {
        set = lastFilterSet_;
        tag = lastFilterTag_;
        way = lastFilterWay_;
        haveFilterSlot_ = false;
    } else {
        set = filterSet(pc);
        tag = filterTag(pc);
        way = filter_.findWay(set, tag);
    }
    FilterEntry *fentry = nullptr;
    if (way != util::AssocTable<FilterEntry>::kNoWay) {
        filter_.touchWay(set, way);
        fentry = &filter_.wayEntry(set, way);
        // Unconditional OR-store beats a data-dependent branch here.
        fentry->provenPolymorphic |= !filter_right;
        fentry->entry.train(target);
    } else {
        filter_.noteLookupMiss(set);
        FilterEntry fresh;
        fresh.entry.train(target);
        filter_.insert(set, tag, fresh);
    }

    // Stage 2: any filter failure — wrong target, cold miss, or a
    // set-conflict eviction — leaks the branch into the main
    // predictor.  (Branches that keep conflicting in the filter must
    // end up *somewhere*.)  Strict mode additionally requires the
    // branch to be proven polymorphic before it may allocate
    // main-table space.
    bool train_main = !filter_right;
    if (config_.mode == FilterMode::Strict)
        train_main = train_main && fentry && fentry->provenPolymorphic;
    if (train_main) {
        main_.updateWithAllocate(pc, target, true);
    } else if (lastMain.valid) {
        // Keep existing main entries coherent without allocating.
        main_.updateWithAllocate(pc, target, false);
    }
}

void
Cascade::observe(const trace::BranchRecord &record)
{
    main_.observe(record);
}

void
Cascade::snapshotProbes(obs::ProbeRegistry &registry) const
{
    // Serve counts are architectural; the filter table's eviction and
    // conflict counters are probe-gated (zero in probes-off builds).
    registry.counter("cascade/served_total", servedTotal);
    registry.counter("cascade/filter_served", servedByFilter);
    registry.counter("cascade/filter_evictions", filter_.evictions());
    registry.counter("cascade/filter_conflict_misses",
                     filter_.conflictMisses());
}

std::uint64_t
Cascade::storageBits() const
{
    const std::uint64_t filter_bits =
        filter_.size() *
        (TargetEntry::bits() + config_.filterTagBits + 1);
    return filter_bits + main_.storageBits();
}

void
Cascade::reset()
{
    filter_.reset();
    main_.reset();
    lastFilter = {};
    lastMain = {};
    servedByFilter = 0;
    servedTotal = 0;
    haveFilterSlot_ = false;
}

void
Cascade::saveState(util::StateWriter &writer) const
{
    filter_.saveState(writer,
                      [](util::StateWriter &w, const FilterEntry &e) {
                          saveTargetEntry(w, e.entry);
                          w.writeBool(e.provenPolymorphic);
                      });
    main_.saveState(writer);
    savePrediction(writer, lastFilter);
    savePrediction(writer, lastMain);
    writer.writeU64(servedByFilter);
    writer.writeU64(servedTotal);
}

void
Cascade::loadState(util::StateReader &reader)
{
    filter_.loadState(reader,
                      [](util::StateReader &r, FilterEntry &e) {
                          loadTargetEntry(r, e.entry);
                          e.provenPolymorphic = r.readBool();
                      });
    main_.loadState(reader);
    loadPrediction(reader, lastFilter);
    loadPrediction(reader, lastMain);
    servedByFilter = reader.readU64();
    servedTotal = reader.readU64();
    if (reader.ok() && servedByFilter > servedTotal)
        reader.fail("Cascade serve counters inconsistent");
    // The cached filter slot is transient: a restored predictor
    // rescans on its next update.
    haveFilterSlot_ = false;
}

void
Cascade::saveProbes(util::StateWriter &writer) const
{
    filter_.saveProbes(writer);
    main_.saveProbes(writer);
}

void
Cascade::loadProbes(util::StateReader &reader)
{
    filter_.loadProbes(reader);
    main_.loadProbes(reader);
}

double
Cascade::filterServeRatio() const
{
    return servedTotal == 0
               ? 0.0
               : static_cast<double>(servedByFilter) /
                     static_cast<double>(servedTotal);
}

} // namespace ibp::pred
