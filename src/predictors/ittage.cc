#include "predictors/ittage.hh"

#include <cmath>

#include "util/logging.hh"

namespace ibp::pred {

Ittage::Ittage(const IttageConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      histLens_(), history_(1, 1, config.stream),
      base_(config.baseEntries)
{
    fatal_if(config.baseEntries == 0, "ITTAGE needs a base table");
    fatal_if(config.numComponents == 0,
             "ITTAGE needs at least one tagged component");
    fatal_if(config.entriesPerComponent == 0,
             "ITTAGE needs non-empty tagged components");
    fatal_if(config.tagBits < 2 || config.tagBits > 30,
             "ITTAGE tag width out of range");
    fatal_if(config.minHistory == 0, "ITTAGE needs minHistory >= 1");
    fatal_if(config.maxHistory < config.minHistory,
             "ITTAGE history range is inverted");
    fatal_if(config.bitsPerTarget == 0 || config.bitsPerTarget > 31,
             "ITTAGE path-symbol width out of range");

    // Geometric history-length series from minHistory to maxHistory,
    // forced strictly increasing so every component sees a distinct
    // window (the TAGE series; for 2..64 over 6 components this is
    // exactly 2, 4, 8, 16, 32, 64).
    histLens_.reserve(config.numComponents);
    const double lo = static_cast<double>(config.minHistory);
    const double hi = static_cast<double>(config.maxHistory);
    for (std::size_t i = 0; i < config.numComponents; ++i) {
        const double frac =
            config.numComponents == 1
                ? 1.0
                : static_cast<double>(i) /
                      static_cast<double>(config.numComponents - 1);
        auto length = static_cast<unsigned>(
            std::llround(lo * std::pow(hi / lo, frac)));
        if (!histLens_.empty() && length <= histLens_.back())
            length = histLens_.back() + 1;
        histLens_.push_back(length);
    }

    history_ = SymbolHistory(histLens_.back(), config.bitsPerTarget,
                             config.stream);

    const unsigned indexBits =
        std::max(2u, util::log2Ceil(config.entriesPerComponent));
    components_.reserve(config.numComponents);
    indexFolds_.reserve(config.numComponents);
    tagFoldsA_.reserve(config.numComponents);
    tagFoldsB_.reserve(config.numComponents);
    for (std::size_t i = 0; i < config.numComponents; ++i) {
        components_.emplace_back(config.entriesPerComponent);
        indexFolds_.emplace_back(indexBits, histLens_[i],
                                 config.bitsPerTarget);
        tagFoldsA_.emplace_back(config.tagBits, histLens_[i],
                                config.bitsPerTarget);
        tagFoldsB_.emplace_back(config.tagBits - 1, histLens_[i],
                                config.bitsPerTarget);
    }
}

std::uint64_t
Ittage::indexFor(std::size_t component, trace::Addr pc) const
{
    // Mix a second, component-shifted pc slice so the same branch
    // lands on different rows across components even with an empty
    // history (TAGE's index de-correlation).
    const std::uint64_t addr = pc >> 2;
    const std::uint64_t hash =
        addr ^ (addr >> (component + 1)) ^
        indexFolds_[component].value();
    return components_[component].reduce(hash);
}

std::uint32_t
Ittage::tagFor(std::size_t component, trace::Addr pc) const
{
    const std::uint64_t tag =
        util::foldXor(pc >> 2, 34, config_.tagBits) ^
        tagFoldsA_[component].value() ^
        (tagFoldsB_[component].value() << 1);
    return static_cast<std::uint32_t>(
        util::selectLow(tag, config_.tagBits));
}

Ittage::Lookup
Ittage::lookupFor(trace::Addr pc) const
{
    Lookup look;
    look.baseIndex = base_.reduce(pc >> 2);
    for (std::size_t i = config_.numComponents; i-- > 0;) {
        const IttageEntry &entry =
            components_[i].at(indexFor(i, pc));
        if (!entry.valid || entry.tag != tagFor(i, pc))
            continue;
        if (look.provider == kBase) {
            look.provider = i;
            look.prediction = {true, entry.target};
        } else {
            look.altpred = i;
            look.alternate = {true, entry.target};
            break;
        }
    }
    const TargetEntry &fallback = base_.at(look.baseIndex);
    if (look.provider == kBase)
        look.prediction = {fallback.valid, fallback.target};
    if (look.altpred == kBase && look.provider != kBase)
        look.alternate = {fallback.valid, fallback.target};
    return look;
}

std::size_t
Ittage::providerComponent(trace::Addr pc) const
{
    return lookupFor(pc).provider;
}

Prediction
Ittage::predict(trace::Addr pc)
{
    // Pure lookup: update() recomputes the same slots (histories only
    // advance in observe()), so predict() leaves no transient state.
    return lookupFor(pc).prediction;
}

void
Ittage::update(trace::Addr pc, trace::Addr target)
{
    const Lookup look = lookupFor(pc);
    const bool mispredict =
        !look.prediction.valid || look.prediction.target != target;

    if (look.provider != kBase) {
        taggedProvides_.bump();
        IttageEntry &entry =
            components_[look.provider].at(
                indexFor(look.provider, pc));
        const bool correct = entry.target == target;
        // The useful counter moves only when the provider disagreed
        // with the alternate — that is when it carried information.
        if (look.alternate.valid &&
            look.alternate.target != entry.target) {
            if (correct)
                entry.useful.increment();
            else
                entry.useful.decrement();
        }
        if (correct) {
            entry.confidence.increment();
        } else if (!entry.confidence.decrement()) {
            // Confidence exhausted: retarget the line in place.
            entry.target = target;
        }
    }

    // The base table always trains: it is the alternate of last
    // resort, and a freshly allocated component needs a warm fallback.
    base_.at(look.baseIndex).train(target);

    if (mispredict)
        allocate(pc, target, look.provider);
}

void
Ittage::allocate(trace::Addr pc, trace::Addr target,
                 std::size_t provider)
{
    const std::size_t start = provider == kBase ? 0 : provider + 1;
    if (start >= config_.numComponents)
        return; // the longest component already provided

    // Deterministic victim choice: the shortest-history component
    // above the provider whose slot is empty or no longer useful.
    // (Hardware TAGE randomizes here to break ping-pong; a replayed
    // simulation must not, and the determinism lint bans rand().)
    for (std::size_t j = start; j < config_.numComponents; ++j) {
        IttageEntry &entry = components_[j].at(indexFor(j, pc));
        if (entry.valid && !entry.useful.saturatedLow())
            continue;
        entry.valid = true;
        entry.target = target;
        entry.tag = tagFor(j, pc);
        entry.confidence.set(0);
        entry.useful.set(0);
        allocations_.bump();
        return;
    }

    // Every candidate was useful: age them all so the next
    // misprediction finds a victim, and record the stall.
    for (std::size_t j = start; j < config_.numComponents; ++j)
        components_[j].at(indexFor(j, pc)).useful.decrement();
    allocationStalls_.bump();
}

void
Ittage::observe(const trace::BranchRecord &record)
{
    if (!inStream(config_.stream, record))
        return;
    const auto symbol = static_cast<std::uint32_t>(
        pathSymbol(record, config_.bitsPerTarget));
    // Each component's folds drop the symbol leaving *its* window;
    // read the outgoing symbols before the ring advances.
    for (std::size_t i = 0; i < config_.numComponents; ++i) {
        const std::uint32_t outgoing =
            history_.symbol(histLens_[i] - 1);
        indexFolds_[i].push(symbol, outgoing);
        tagFoldsA_[i].push(symbol, outgoing);
        tagFoldsB_[i].push(symbol, outgoing);
    }
    history_.push(symbol);
}

std::uint64_t
Ittage::storageBits() const
{
    const std::uint64_t entryBits =
        64 + config_.tagBits + 2 /* confidence */ + 2 /* useful */ +
        1 /* valid */;
    std::uint64_t bits =
        base_.size() * TargetEntry::bits() + history_.storageBits();
    for (const auto &component : components_)
        bits += component.size() * entryBits;
    for (std::size_t i = 0; i < config_.numComponents; ++i)
        bits += indexFolds_[i].width() + tagFoldsA_[i].width() +
                tagFoldsB_[i].width();
    return bits;
}

void
Ittage::reset()
{
    history_.reset();
    base_.reset();
    for (auto &component : components_)
        component.reset();
    for (auto &fold : indexFolds_)
        fold.reset();
    for (auto &fold : tagFoldsA_)
        fold.reset();
    for (auto &fold : tagFoldsB_)
        fold.reset();
    allocations_.reset();
    allocationStalls_.reset();
    taggedProvides_.reset();
}

void
saveIttageEntry(util::StateWriter &writer, const IttageEntry &entry)
{
    writer.writeBool(entry.valid);
    writer.writeU64(entry.target);
    writer.writeU32(entry.tag);
    writer.writeU8(static_cast<std::uint8_t>(entry.confidence.value()));
    writer.writeU8(static_cast<std::uint8_t>(entry.useful.value()));
}

void
loadIttageEntry(util::StateReader &reader, IttageEntry &entry)
{
    entry.valid = reader.readBool();
    entry.target = reader.readU64();
    entry.tag = reader.readU32();
    const std::uint8_t confidence = reader.readU8();
    const std::uint8_t useful = reader.readU8();
    if (reader.ok() && (confidence > entry.confidence.max() ||
                        useful > entry.useful.max())) {
        reader.fail("ITTAGE entry counter out of range");
        return;
    }
    entry.confidence.set(confidence);
    entry.useful.set(useful);
}

void
Ittage::saveState(util::StateWriter &writer) const
{
    history_.saveState(writer);
    base_.saveState(writer, saveTargetEntry);
    writer.writeVarint(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
        components_[i].saveState(writer, saveIttageEntry);
        indexFolds_[i].saveState(writer);
        tagFoldsA_[i].saveState(writer);
        tagFoldsB_[i].saveState(writer);
    }
}

void
Ittage::loadState(util::StateReader &reader)
{
    history_.loadState(reader);
    base_.loadState(reader, loadTargetEntry);
    const std::uint64_t components = reader.readVarint();
    if (reader.ok() && components != components_.size()) {
        reader.fail("ITTAGE component count mismatch");
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        components_[i].loadState(reader, loadIttageEntry);
        indexFolds_[i].loadState(reader);
        tagFoldsA_[i].loadState(reader);
        tagFoldsB_[i].loadState(reader);
    }
}

void
Ittage::saveProbes(util::StateWriter &writer) const
{
    writer.writeU64(allocations_.value());
    writer.writeU64(allocationStalls_.value());
    writer.writeU64(taggedProvides_.value());
}

void
Ittage::loadProbes(util::StateReader &reader)
{
    allocations_.set(reader.readU64());
    allocationStalls_.set(reader.readU64());
    taggedProvides_.set(reader.readU64());
}

void
Ittage::snapshotProbes(obs::ProbeRegistry &registry) const
{
    registry.counter("ittage/allocations", allocations_);
    registry.counter("ittage/alloc_stalls", allocationStalls_);
    registry.counter("ittage/tagged_provider", taggedProvides_);
}

} // namespace ibp::pred
