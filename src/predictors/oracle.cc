#include "predictors/oracle.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace ibp::pred {

namespace {

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

Oracle::Oracle(const OracleConfig &config, std::string name)
    : config_(config),
      name_(name.empty()
                ? std::string("Oracle-") + streamName(config.stream) +
                      "@" + std::to_string(config.pathLength)
                : std::move(name))
{
    fatal_if(config.pathLength == 0, "oracle needs path length >= 1");
}

std::uint64_t
Oracle::contextKey(trace::Addr pc) const
{
    std::uint64_t h = config_.usePc ? pc : 0;
    for (trace::Addr t : window_)
        h = mix(h, t);
    // Hash collisions over 64 bits are negligible at trace scale.
    return h;
}

Prediction
Oracle::predict(trace::Addr pc)
{
    lastKey = contextKey(pc);
    auto it = table_.find(lastKey);
    if (it == table_.end())
        return {};
    return {true, it->second};
}

void
Oracle::update(trace::Addr pc, trace::Addr target)
{
    (void)pc;
    table_[lastKey] = target;
}

void
Oracle::observe(const trace::BranchRecord &record)
{
    if (!inStream(config_.stream, record))
        return;
    window_.push_back(record.target);
    if (window_.size() > config_.pathLength)
        window_.pop_front();
}

std::uint64_t
Oracle::storageBits() const
{
    return table_.size() * (64 + 64);
}

void
Oracle::reset()
{
    window_.clear();
    table_.clear();
    lastKey = 0;
}

void
Oracle::saveState(util::StateWriter &writer) const
{
    writer.writeVarint(window_.size());
    for (trace::Addr addr : window_)
        writer.writeU64(addr);
    // unordered_map iteration order is not deterministic; dump the
    // contexts sorted so a straight run and a resumed run produce
    // byte-identical checkpoints.
    std::vector<std::pair<std::uint64_t, trace::Addr>> sorted(
        table_.begin(), table_.end());
    std::sort(sorted.begin(), sorted.end());
    writer.writeVarint(sorted.size());
    for (const auto &[key, target] : sorted) {
        writer.writeU64(key);
        writer.writeU64(target);
    }
    writer.writeU64(lastKey);
}

void
Oracle::loadState(util::StateReader &reader)
{
    window_.clear();
    table_.clear();
    const std::uint64_t window = reader.readVarint();
    if (reader.ok() && window > config_.pathLength) {
        reader.fail("oracle window longer than the path length");
        return;
    }
    for (std::uint64_t i = 0; i < window && reader.ok(); ++i)
        window_.push_back(reader.readU64());
    const std::uint64_t contexts = reader.readVarint();
    // An unbounded table could claim absurd sizes; bound by what the
    // remaining bytes can actually hold (16 bytes per context).
    if (reader.ok() && contexts > reader.remaining() / 16) {
        reader.fail("oracle context count overruns input");
        return;
    }
    table_.reserve(static_cast<std::size_t>(contexts));
    for (std::uint64_t i = 0; i < contexts && reader.ok(); ++i) {
        const std::uint64_t key = reader.readU64();
        table_[key] = reader.readU64();
    }
    lastKey = reader.readU64();
}

} // namespace ibp::pred
