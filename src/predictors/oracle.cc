#include "predictors/oracle.hh"

#include "util/logging.hh"

namespace ibp::pred {

namespace {

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

Oracle::Oracle(const OracleConfig &config, std::string name)
    : config_(config),
      name_(name.empty()
                ? std::string("Oracle-") + streamName(config.stream) +
                      "@" + std::to_string(config.pathLength)
                : std::move(name))
{
    fatal_if(config.pathLength == 0, "oracle needs path length >= 1");
}

std::uint64_t
Oracle::contextKey(trace::Addr pc) const
{
    std::uint64_t h = config_.usePc ? pc : 0;
    for (trace::Addr t : window_)
        h = mix(h, t);
    // Hash collisions over 64 bits are negligible at trace scale.
    return h;
}

Prediction
Oracle::predict(trace::Addr pc)
{
    lastKey = contextKey(pc);
    auto it = table_.find(lastKey);
    if (it == table_.end())
        return {};
    return {true, it->second};
}

void
Oracle::update(trace::Addr pc, trace::Addr target)
{
    (void)pc;
    table_[lastKey] = target;
}

void
Oracle::observe(const trace::BranchRecord &record)
{
    if (!inStream(config_.stream, record))
        return;
    window_.push_back(record.target);
    if (window_.size() > config_.pathLength)
        window_.pop_front();
}

std::uint64_t
Oracle::storageBits() const
{
    return table_.size() * (64 + 64);
}

void
Oracle::reset()
{
    window_.clear();
    table_.clear();
    lastKey = 0;
}

} // namespace ibp::pred
