/**
 * @file
 * Target Cache predictor (Chang, Hao & Patt, ISCA '97).
 *
 * A single tagless table of most-recent targets, indexed by a gshare
 * hash of the branch pc and a path-history register whose *stream* is
 * selectable — the Target Cache's defining feature.  The paper's
 * Figure-6 configuration (TC-PIB) is a 2K-entry table with an 11-bit
 * register of indirect-branch targets, 2 low-order bits each.
 */

#ifndef IBP_PREDICTORS_TARGET_CACHE_HH_
#define IBP_PREDICTORS_TARGET_CACHE_HH_

#include <cstdint>
#include <string>

#include "util/table.hh"
#include "predictors/path_history.hh"
#include "predictors/predictor.hh"

namespace ibp::pred {

/** Target Cache configuration. */
struct TargetCacheConfig
{
    std::size_t entries = 2048;
    unsigned historyBits = 11;
    unsigned bitsPerTarget = 2;
    StreamSel stream = StreamSel::MtIndirect;
};

/** Tagless Target Cache with selectable correlation stream. */
class TargetCache : public IndirectPredictor
{
  public:
    explicit TargetCache(const TargetCacheConfig &config,
                         std::string name = "");

    std::string name() const override { return name_; }
    Prediction predict(trace::Addr pc) override;
    void update(trace::Addr pc, trace::Addr target) override;
    void observe(const trace::BranchRecord &record) override;
    std::uint64_t storageBits() const override;
    void reset() override;
    void saveState(util::StateWriter &writer) const override;
    void loadState(util::StateReader &reader) override;

    /** No gated probes yet; the explicit no-op override records that
     *  as a deliberate choice (serde-coverage lint) and keeps the
     *  golden report fixture byte-identical. */
    void snapshotProbes(obs::ProbeRegistry &registry) const override
    {
        (void)registry;
    }

    const ShiftHistory &history() const { return history_; }

  private:
    struct Entry
    {
        bool valid = false;
        trace::Addr target = 0;
    };

    TargetCacheConfig config_;
    std::string name_;
    ShiftHistory history_;
    util::DirectTable<Entry> table_;
    std::uint64_t lastIndex = 0;
};

} // namespace ibp::pred

#endif // IBP_PREDICTORS_TARGET_CACHE_HH_
