#include "predictors/dpath.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ibp::pred {

PathComponent::PathComponent(const PathComponentConfig &config)
    : config_(config),
      history_(config.historyBits, config.bitsPerTarget, config.stream),
      direct_(config.tagged ? 1 : config.entries),
      assoc_(config.tagged ? std::max<std::size_t>(
                                 1, config.entries / config.ways)
                           : 1,
             config.tagged ? config.ways : 1)
{
    fatal_if(config.entries == 0, "PathComponent needs entries");
    fatal_if(config.tagged && config.entries % config.ways != 0,
             "tagged PathComponent: entries must be a multiple of ways");

    // Precompute the across-targets interleave as per-history-byte
    // lookup tables.  The reference mapping (see indexHash) sends
    // source history bit s = t*per + i to output bit i*targets + t,
    // kept while the output bit is below 32; each LUT entry is the OR
    // of the images of one byte's set bits.
    const unsigned per = config.bitsPerTarget;
    const unsigned targets = config.historyBits / per;
    acrossLut_.resize((config.historyBits + 7) / 8);
    for (std::size_t b = 0; b < acrossLut_.size(); ++b) {
        for (unsigned v = 0; v < 256; ++v) {
            std::uint32_t image = 0;
            for (unsigned k = 0; k < 8; ++k) {
                if (((v >> k) & 1) == 0)
                    continue;
                const unsigned s =
                    static_cast<unsigned>(8 * b) + k;
                if (s >= per * targets)
                    continue;
                // Bit-permutation arithmetic, not a table index.
                // ibp-lint: allow(table-modulo)
                const unsigned out = (s % per) * targets + s / per;
                if (out < 32)
                    image |= std::uint32_t{1} << out;
            }
            acrossLut_[b][v] = image;
        }
    }
}

std::uint64_t
PathComponent::indexHash(trace::Addr pc) const
{
    // Driesen & Holzle's reverse-interleaved index, two interleaves
    // deep: first the recorded targets' bits are interleaved across
    // targets (bit 0 of every target, then bit 1, ...), so truncation
    // keeps a little of *every* target on the path; then the result
    // is interleaved with branch-address bits, so a 2^k-entry PHT
    // grants only ~k/2 bits to the path.  This is deliberately weaker
    // than gshare's full-register XOR — path reach survives, but at a
    // fraction of a bit per target, which is the design point the
    // paper's Dpath/Cascade occupy.  Both interleaves are constant
    // time: the across step ORs one precomputed LUT entry per history
    // byte (constructor), the address step is a Morton spread.
    const std::uint64_t hist = history_.value();
    std::uint64_t across = 0;
    for (std::size_t b = 0; b < acrossLut_.size(); ++b)
        across |= acrossLut_[b][(hist >> (8 * b)) & 0xFF];
    return util::interleaveBits(pc >> 2, across, 16);
}

std::uint64_t
PathComponent::tagHash(trace::Addr pc) const
{
    // Tags identify the *branch*, as in Driesen & Holzle's tagged
    // PHTs; path context is discriminated only through the index.
    // (Mixing history into the tag would give the tagged tables far
    // more path reach than the paper's design had.)
    return util::foldXor(pc >> 2, 32, config_.tagBits);
}

Prediction
PathComponent::predict(trace::Addr pc)
{
    if (!config_.tagged) {
        lastIndex = direct_.reduce(indexHash(pc));
        const TargetEntry &entry = direct_.at(lastIndex);
        return {entry.valid, entry.target};
    }
    lastSet = assoc_.reduce(indexHash(pc));
    lastTag = tagHash(pc);
    const std::size_t way = assoc_.findWay(lastSet, lastTag);
    lastWay_ = way;
    haveSlot_ = true;
    if (way == util::AssocTable<TargetEntry>::kNoWay) {
        assoc_.noteLookupMiss(lastSet);
        return {};
    }
    assoc_.touchWay(lastSet, way);
    const TargetEntry &entry = assoc_.wayEntry(lastSet, way);
    return {entry.valid, entry.target};
}

void
PathComponent::update(trace::Addr target, bool allocate)
{
    if (!config_.tagged) {
        direct_.at(lastIndex).train(target);
        return;
    }
    // Consume the way predict() resolved; fall back to a fresh scan
    // when no predict preceded this update (checkpoint restore).  The
    // hit/miss outcome cannot change in between — nothing inserts into
    // this component's table between a predict and its update — so the
    // cached way and a rescan are interchangeable, touch for touch.
    std::size_t way;
    if (haveSlot_) {
        way = lastWay_;
        haveSlot_ = false;
    } else {
        way = assoc_.findWay(lastSet, lastTag);
    }
    if (way != util::AssocTable<TargetEntry>::kNoWay) {
        assoc_.touchWay(lastSet, way);
        assoc_.wayEntry(lastSet, way).train(target);
    } else {
        assoc_.noteLookupMiss(lastSet);
        if (allocate) {
            TargetEntry fresh;
            fresh.train(target);
            assoc_.insert(lastSet, lastTag, fresh);
        }
    }
}

void
PathComponent::prefetch(trace::Addr pc) const
{
    if (!config_.tagged)
        direct_.prefetchEntry(direct_.reduce(indexHash(pc)));
    else
        assoc_.prefetchSet(assoc_.reduce(indexHash(pc)));
}

void
PathComponent::observe(const trace::BranchRecord &record)
{
    history_.observe(record);
}

std::uint64_t
PathComponent::storageBits() const
{
    const std::uint64_t entry_bits =
        TargetEntry::bits() + (config_.tagged ? config_.tagBits : 0);
    return config_.entries * entry_bits + config_.historyBits;
}

void
PathComponent::reset()
{
    history_.reset();
    direct_.reset();
    assoc_.reset();
    haveSlot_ = false;
}

void
PathComponent::saveState(util::StateWriter &writer) const
{
    history_.saveState(writer);
    // Only the active table carries state; the other is a 1-entry
    // stub whose contents never change.
    if (config_.tagged)
        assoc_.saveState(writer, saveTargetEntry);
    else
        direct_.saveState(writer, saveTargetEntry);
    writer.writeU64(lastIndex);
    writer.writeU64(lastSet);
    writer.writeU64(lastTag);
}

void
PathComponent::loadState(util::StateReader &reader)
{
    history_.loadState(reader);
    if (config_.tagged)
        assoc_.loadState(reader, loadTargetEntry);
    else
        direct_.loadState(reader, loadTargetEntry);
    lastIndex = reader.readU64();
    lastSet = reader.readU64();
    lastTag = reader.readU64();
    // The cached way is transient: a restored component rescans.
    haveSlot_ = false;
}

void
PathComponent::saveProbes(util::StateWriter &writer) const
{
    assoc_.saveProbes(writer);
}

void
PathComponent::loadProbes(util::StateReader &reader)
{
    assoc_.loadProbes(reader);
}

Dpath::Dpath(const DpathConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      short_(config.shortPath), long_(config.longPath),
      selector_(config.selectorEntries)
{
}

Prediction
Dpath::predict(trace::Addr pc)
{
    lastShort = short_.predict(pc);
    lastLong = long_.predict(pc);
    const Selector &sel =
        selector_.at(selector_.reduce(pc >> 2));
    // Counter high half selects the long-path component; fall back to
    // whichever component has an entry when the chosen one is cold.
    const bool choose_long = sel.counter.high();
    const Prediction &chosen = choose_long ? lastLong : lastShort;
    const Prediction &other = choose_long ? lastShort : lastLong;
    return chosen.valid ? chosen : other;
}

void
Dpath::update(trace::Addr pc, trace::Addr target)
{
    updateWithAllocate(pc, target, true);
}

void
Dpath::updateWithAllocate(trace::Addr pc, trace::Addr target,
                          bool allocate)
{
    const bool short_right = lastShort.hit(target);
    const bool long_right = lastLong.hit(target);
    Selector &sel = selector_.at(selector_.reduce(pc >> 2));
    // Select-based saturating bump: whether the components disagree is
    // data-dependent and unpredictable, so the if/else-if form eats a
    // branch mispredict on most selector-moving branches.
    const int delta =
        static_cast<int>(long_right) - static_cast<int>(short_right);
    const unsigned cur = sel.counter.value();
    const unsigned up = cur == sel.counter.max() ? cur : cur + 1;
    const unsigned down = cur == 0 ? 0u : cur - 1;
    sel.counter.set(delta > 0 ? up : delta < 0 ? down : cur);

    short_.update(target, allocate);
    long_.update(target, allocate);
}

void
Dpath::observe(const trace::BranchRecord &record)
{
    short_.observe(record);
    long_.observe(record);
}

std::uint64_t
Dpath::storageBits() const
{
    return short_.storageBits() + long_.storageBits() +
           selector_.size() * 2;
}

void
Dpath::reset()
{
    short_.reset();
    long_.reset();
    selector_.reset();
    lastShort = {};
    lastLong = {};
}

void
Dpath::saveState(util::StateWriter &writer) const
{
    short_.saveState(writer);
    long_.saveState(writer);
    selector_.saveState(writer,
                        [](util::StateWriter &w, const Selector &s) {
                            w.writeU8(static_cast<std::uint8_t>(
                                s.counter.value()));
                        });
    savePrediction(writer, lastShort);
    savePrediction(writer, lastLong);
}

void
Dpath::loadState(util::StateReader &reader)
{
    short_.loadState(reader);
    long_.loadState(reader);
    selector_.loadState(reader,
                        [](util::StateReader &r, Selector &s) {
                            const std::uint8_t count = r.readU8();
                            if (r.ok() && count > s.counter.max()) {
                                r.fail("selector counter out of range");
                                return;
                            }
                            s.counter.set(count);
                        });
    loadPrediction(reader, lastShort);
    loadPrediction(reader, lastLong);
}

void
Dpath::saveProbes(util::StateWriter &writer) const
{
    short_.saveProbes(writer);
    long_.saveProbes(writer);
}

void
Dpath::loadProbes(util::StateReader &reader)
{
    short_.loadProbes(reader);
    long_.loadProbes(reader);
}

} // namespace ibp::pred
