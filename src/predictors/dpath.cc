#include "predictors/dpath.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace ibp::pred {

PathComponent::PathComponent(const PathComponentConfig &config)
    : config_(config),
      history_(config.historyBits, config.bitsPerTarget, config.stream),
      direct_(config.tagged ? 1 : config.entries),
      assoc_(config.tagged ? std::max<std::size_t>(
                                 1, config.entries / config.ways)
                           : 1,
             config.tagged ? config.ways : 1)
{
    fatal_if(config.entries == 0, "PathComponent needs entries");
    fatal_if(config.tagged && config.entries % config.ways != 0,
             "tagged PathComponent: entries must be a multiple of ways");
}

namespace {

/** SplitMix64 finalizer: scrambles every history bit into the hash. */
constexpr std::uint64_t
scramble(std::uint64_t value)
{
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
    return value ^ (value >> 31);
}

} // namespace

std::uint64_t
PathComponent::indexHash(trace::Addr pc) const
{
    // Driesen & Holzle's reverse-interleaved index, two interleaves
    // deep: first the recorded targets' bits are interleaved across
    // targets (bit 0 of every target, then bit 1, ...), so truncation
    // keeps a little of *every* target on the path; then the result
    // is interleaved with branch-address bits, so a 2^k-entry PHT
    // grants only ~k/2 bits to the path.  This is deliberately weaker
    // than gshare's full-register XOR — path reach survives, but at a
    // fraction of a bit per target, which is the design point the
    // paper's Dpath/Cascade occupy.
    const unsigned per = config_.bitsPerTarget;
    const unsigned targets = config_.historyBits / per;
    const std::uint64_t hist = history_.value();
    std::uint64_t across = 0;
    unsigned out_bit = 0;
    for (unsigned i = 0; i < per && out_bit < 32; ++i)
        for (unsigned t = 0; t < targets && out_bit < 32;
             ++t, ++out_bit)
            if ((hist >> (t * per + i)) & 1)
                across |= std::uint64_t{1} << out_bit;
    return util::interleaveBits(pc >> 2, across, 16);
}

std::uint64_t
PathComponent::tagHash(trace::Addr pc) const
{
    // Tags identify the *branch*, as in Driesen & Holzle's tagged
    // PHTs; path context is discriminated only through the index.
    // (Mixing history into the tag would give the tagged tables far
    // more path reach than the paper's design had.)
    return util::foldXor(pc >> 2, 32, config_.tagBits);
}

Prediction
PathComponent::predict(trace::Addr pc)
{
    if (!config_.tagged) {
        lastIndex = direct_.reduce(indexHash(pc));
        const TargetEntry &entry = direct_.at(lastIndex);
        return {entry.valid, entry.target};
    }
    lastSet = assoc_.reduce(indexHash(pc));
    lastTag = tagHash(pc);
    const TargetEntry *entry = assoc_.lookup(lastSet, lastTag);
    if (!entry)
        return {};
    return {entry->valid, entry->target};
}

void
PathComponent::update(trace::Addr target, bool allocate)
{
    if (!config_.tagged) {
        direct_.at(lastIndex).train(target);
        return;
    }
    TargetEntry *entry = assoc_.lookup(lastSet, lastTag);
    if (entry) {
        entry->train(target);
    } else if (allocate) {
        TargetEntry fresh;
        fresh.train(target);
        assoc_.insert(lastSet, lastTag, fresh);
    }
}

void
PathComponent::observe(const trace::BranchRecord &record)
{
    history_.observe(record);
}

std::uint64_t
PathComponent::storageBits() const
{
    const std::uint64_t entry_bits =
        TargetEntry::bits() + (config_.tagged ? config_.tagBits : 0);
    return config_.entries * entry_bits + config_.historyBits;
}

void
PathComponent::reset()
{
    history_.reset();
    direct_.reset();
    assoc_.reset();
}

void
PathComponent::saveState(util::StateWriter &writer) const
{
    history_.saveState(writer);
    // Only the active table carries state; the other is a 1-entry
    // stub whose contents never change.
    if (config_.tagged)
        assoc_.saveState(writer, saveTargetEntry);
    else
        direct_.saveState(writer, saveTargetEntry);
    writer.writeU64(lastIndex);
    writer.writeU64(lastSet);
    writer.writeU64(lastTag);
}

void
PathComponent::loadState(util::StateReader &reader)
{
    history_.loadState(reader);
    if (config_.tagged)
        assoc_.loadState(reader, loadTargetEntry);
    else
        direct_.loadState(reader, loadTargetEntry);
    lastIndex = reader.readU64();
    lastSet = reader.readU64();
    lastTag = reader.readU64();
}

void
PathComponent::saveProbes(util::StateWriter &writer) const
{
    assoc_.saveProbes(writer);
}

void
PathComponent::loadProbes(util::StateReader &reader)
{
    assoc_.loadProbes(reader);
}

Dpath::Dpath(const DpathConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      short_(config.shortPath), long_(config.longPath),
      selector_(config.selectorEntries)
{
}

Prediction
Dpath::predict(trace::Addr pc)
{
    lastShort = short_.predict(pc);
    lastLong = long_.predict(pc);
    const Selector &sel =
        selector_.at(selector_.reduce(pc >> 2));
    // Counter high half selects the long-path component; fall back to
    // whichever component has an entry when the chosen one is cold.
    const bool choose_long = sel.counter.high();
    const Prediction &chosen = choose_long ? lastLong : lastShort;
    const Prediction &other = choose_long ? lastShort : lastLong;
    return chosen.valid ? chosen : other;
}

void
Dpath::update(trace::Addr pc, trace::Addr target)
{
    updateWithAllocate(pc, target, true);
}

void
Dpath::updateWithAllocate(trace::Addr pc, trace::Addr target,
                          bool allocate)
{
    const bool short_right = lastShort.hit(target);
    const bool long_right = lastLong.hit(target);
    Selector &sel = selector_.at(selector_.reduce(pc >> 2));
    if (long_right && !short_right)
        sel.counter.increment();
    else if (short_right && !long_right)
        sel.counter.decrement();

    short_.update(target, allocate);
    long_.update(target, allocate);
}

void
Dpath::observe(const trace::BranchRecord &record)
{
    short_.observe(record);
    long_.observe(record);
}

std::uint64_t
Dpath::storageBits() const
{
    return short_.storageBits() + long_.storageBits() +
           config_.selectorEntries * 2;
}

void
Dpath::reset()
{
    short_.reset();
    long_.reset();
    selector_.reset();
    lastShort = {};
    lastLong = {};
}

void
Dpath::saveState(util::StateWriter &writer) const
{
    short_.saveState(writer);
    long_.saveState(writer);
    selector_.saveState(writer,
                        [](util::StateWriter &w, const Selector &s) {
                            w.writeU8(static_cast<std::uint8_t>(
                                s.counter.value()));
                        });
    savePrediction(writer, lastShort);
    savePrediction(writer, lastLong);
}

void
Dpath::loadState(util::StateReader &reader)
{
    short_.loadState(reader);
    long_.loadState(reader);
    selector_.loadState(reader,
                        [](util::StateReader &r, Selector &s) {
                            const std::uint8_t count = r.readU8();
                            if (r.ok() && count > s.counter.max()) {
                                r.fail("selector counter out of range");
                                return;
                            }
                            s.counter.set(count);
                        });
    loadPrediction(reader, lastShort);
    loadPrediction(reader, lastLong);
}

void
Dpath::saveProbes(util::StateWriter &writer) const
{
    short_.saveProbes(writer);
    long_.saveProbes(writer);
}

void
Dpath::loadProbes(util::StateReader &reader)
{
    short_.loadProbes(reader);
    long_.loadProbes(reader);
}

} // namespace ibp::pred
