/**
 * @file
 * Bytecode-interpreter dispatch scenario.
 *
 * The classic indirect-branch workload: an interpreter's dispatch
 * switch whose next opcode correlates with the recent opcode sequence
 * at different depths.  Demonstrates the paper's variable-length path
 * correlation argument directly: predictors are swept against
 * workloads of increasing correlation order, and the crossover where
 * fixed-short-history designs stop following appears exactly at their
 * history reach, while the order-10 PPM keeps tracking.
 *
 * Build & run:  ./build/examples/switch_interpreter [num_records]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/trace_stats.hh"
#include "workload/program.hh"
#include "sim/engine.hh"
#include "sim/factory.hh"

namespace {

using namespace ibp::workload;

/** Interpreter with dispatch correlation at the given path offset. */
SynthesisParams
interpreterWorkload(unsigned depth)
{
    SynthesisParams params;
    params.seed = 0xBEEF + depth;
    params.caseChainLen = 2;

    HotSiteSpec input; // opcode stream entropy
    input.behavior = BehaviorClass::Uniform;
    input.numTargets = 3;

    HotSiteSpec pad; // straight-line handlers between dispatches
    pad.behavior = BehaviorClass::Monomorphic;
    pad.count = depth;
    pad.numTargets = 2;
    pad.noise = 0.001;

    HotSiteSpec dispatch; // the interpreter loop's big switch
    dispatch.behavior = BehaviorClass::PibCorrelated;
    dispatch.numTargets = 8;
    dispatch.order = 1;
    dispatch.offset = depth; // correlates `depth` opcodes back
    dispatch.symbolBits = 2;
    dispatch.noise = 0.005;

    params.sites = {input, pad, dispatch};
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t records =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;

    const std::vector<std::string> predictors = {
        "BTB2b", "GAp", "TC-PIB", "Cascade", "PPM-hyb", "PPM-low"};
    const unsigned depths[] = {1, 2, 4, 6, 8};

    std::printf("Interpreter dispatch: misprediction %% of the "
                "dispatch switch itself as its opcode correlation "
                "moves deeper into the path\n\n");
    std::printf("%-7s", "depth");
    for (const auto &name : predictors)
        std::printf(" %9s", name.c_str());
    std::printf("\n");

    for (unsigned depth : depths) {
        Program program = synthesize(interpreterWorkload(depth));
        ibp::trace::TraceBuffer trace = program.collect(records);

        // Identify the dispatch switch: the site with the largest
        // target set (the padding handlers and the opcode driver are
        // narrower).  Report its misprediction ratio in isolation —
        // totals would be diluted by the easy handlers.
        const auto stats = ibp::trace::characterize(trace);
        ibp::trace::Addr dispatch_pc = 0;
        std::size_t best_arity = 0;
        for (const auto &[pc, site] : stats.sites) {
            if (site.multiTarget && site.arity() > best_arity) {
                best_arity = site.arity();
                dispatch_pc = pc;
            }
        }

        std::printf("%-7u", depth);
        for (const auto &name : predictors) {
            auto predictor = ibp::sim::makePredictor(name);
            ibp::sim::EngineConfig config;
            config.perSiteStats = true;
            ibp::sim::Engine engine(config);
            trace.rewind();
            const auto metrics = engine.run(trace, *predictor);
            std::printf(" %9.2f",
                        metrics.perSite.at(dispatch_pc)
                            .misses.percent());
        }
        std::printf("\n");
    }

    std::printf(
        "\nReading the table: every predictor dies where its history "
        "reach ends -- BTB2b immediately, Cascade near depth 4, GAp "
        "at 5, TC-PIB at 5.5.  The order-10 PPM reaches deeper, but "
        "which depths it serves depends on the SFSXS final select "
        "(paper Section 4): the high-order select (PPM-hyb) keeps "
        "recent-path bits and fades by depth 6, while the low-order "
        "alternative (PPM-low) keeps deep-path bits and tracks "
        "correlations 8+ targets back.  The paper found 'little "
        "difference' on its traces; this workload shows exactly when "
        "the choice matters.\n");
    return 0;
}
