/**
 * @file
 * trace_tool — generate / convert / characterize branch-trace files.
 *
 * Usage:
 *   trace_tool gen <profile> <out.ibpt> [scale]   synthesize a trace
 *   trace_tool text <in.ibpt> <out.txt>           binary -> text
 *   trace_tool bin <in.txt> <out.ibpt>            text -> binary
 *   trace_tool stat <in.ibpt|in.txt>              Table-1-style stats
 *   trace_tool run <in.ibpt|in.txt> <predictor>   simulate one file
 *   trace_tool suite [scale] [threads]            Figure-6 matrix
 *   trace_tool list                               profiles+predictors
 *
 * `suite` replays the full benchmark x predictor matrix through the
 * suite runner; threads = 0 (default) uses hardware concurrency and
 * 1 forces the legacy serial path.  The matrix is bit-identical for
 * every thread count — only the wall-clock footer changes.
 *
 * Trace files in the binary format start with the "IBPT" magic;
 * anything else is parsed as the text format.  This is the
 * bring-your-own-trace entry point: dump your own branch stream in
 * the one-line-per-branch text format and simulate any predictor on
 * it.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "util/logging.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/profiles.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/factory.hh"

namespace {

using namespace ibp;

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool gen <profile> <out.ibpt> [scale]\n"
                 "       trace_tool text <in.ibpt> <out.txt>\n"
                 "       trace_tool bin <in.txt> <out.ibpt>\n"
                 "       trace_tool stat <in>\n"
                 "       trace_tool run <in> <predictor>\n"
                 "       trace_tool suite [scale] [threads]\n"
                 "       trace_tool list\n");
    return 2;
}

/** Open a trace file, sniffing binary vs text by the magic bytes. */
std::unique_ptr<trace::BranchSource>
openTrace(std::ifstream &file, const std::string &path)
{
    file.open(path, std::ios::binary);
    fatal_if(!file, "cannot open ", path);
    const int first = file.peek();
    // The binary header starts with the varint-coded magic whose first
    // byte has the continuation bit set; text lines never do.
    if (first != std::char_traits<char>::eof() && (first & 0x80))
        return std::make_unique<trace::TraceReader>(file);
    return std::make_unique<trace::TextTraceReader>(file);
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const auto suite = workload::standardSuite();
    const auto smoke = workload::smokeProfile();
    const auto *profile = std::string(argv[2]) == "smoke"
                              ? &smoke
                              : workload::findProfile(suite, argv[2]);
    fatal_if(!profile, "unknown profile '", argv[2],
             "' (see: trace_tool list)");
    const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;

    std::ofstream out(argv[3], std::ios::binary);
    fatal_if(!out, "cannot create ", argv[3]);
    trace::TraceWriter writer(out);
    workload::Program program = workload::synthesize(profile->program);
    const auto records = static_cast<std::uint64_t>(
        static_cast<double>(profile->records) * scale);
    program.run(records, writer);
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(writer.count()),
                argv[3]);
    return 0;
}

int
cmdConvert(int argc, char **argv, bool to_text)
{
    if (argc < 4)
        return usage();
    std::ifstream in;
    auto source = openTrace(in, argv[2]);
    std::ofstream out(argv[3], std::ios::binary);
    fatal_if(!out, "cannot create ", argv[3]);
    std::uint64_t count = 0;
    if (to_text) {
        trace::TextTraceWriter writer(out);
        count = trace::pump(*source, writer);
    } else {
        trace::TraceWriter writer(out);
        count = trace::pump(*source, writer);
    }
    std::printf("converted %llu records\n",
                static_cast<unsigned long long>(count));
    return 0;
}

int
cmdStat(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::ifstream in;
    auto source = openTrace(in, argv[2]);
    trace::StatsCollector collector;
    trace::BranchRecord record;
    while (source->next(record))
        collector.push(record);
    const auto &stats = collector.stats();
    std::printf("branches        %llu\n",
                static_cast<unsigned long long>(stats.totalBranches));
    std::printf("  conditional   %llu\n",
                static_cast<unsigned long long>(stats.condBranches));
    std::printf("  uncond direct %llu\n",
                static_cast<unsigned long long>(stats.uncondDirect));
    std::printf("  jmp indirect  %llu\n",
                static_cast<unsigned long long>(stats.indirectJmp));
    std::printf("  jsr indirect  %llu\n",
                static_cast<unsigned long long>(stats.indirectJsr));
    std::printf("  returns       %llu\n",
                static_cast<unsigned long long>(stats.returns));
    std::printf("MT indirect     %llu (ST excluded: %llu)\n",
                static_cast<unsigned long long>(stats.mtIndirect),
                static_cast<unsigned long long>(stats.stIndirect));
    std::printf("static MT sites %zu, mean dynamic arity %.2f, "
                "monomorphic %.1f%%\n",
                stats.staticMtSites(), stats.meanDynamicArity(),
                100.0 * stats.monomorphicSiteFraction(0.95));
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    fatal_if(!sim::knownPredictor(argv[3]), "unknown predictor '",
             argv[3], "' (see: trace_tool list)");
    std::ifstream in;
    auto source = openTrace(in, argv[2]);
    auto predictor = sim::makePredictor(argv[3]);
    sim::Engine engine;
    const auto metrics = engine.run(*source, *predictor);
    std::printf("%s on %s:\n", predictor->name().c_str(), argv[2]);
    std::printf("  MT indirect predicted : %llu\n",
                static_cast<unsigned long long>(metrics.mtIndirect));
    std::printf("  misprediction ratio   : %.2f%%\n",
                metrics.missPercent());
    std::printf("  abstained             : %.2f%%\n",
                metrics.noPrediction.percent());
    std::printf("  RAS return misses     : %.2f%%\n",
                metrics.returnMisses.percent());
    std::printf("  storage               : %llu bits\n",
                static_cast<unsigned long long>(
                    predictor->storageBits()));
    return 0;
}

int
cmdSuite(int argc, char **argv)
{
    sim::SuiteOptions options;
    options.traceScale = argc > 2 ? std::atof(argv[2]) : 0.1;
    const long threads = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 0;
    fatal_if(options.traceScale <= 0, "scale must be positive");
    fatal_if(threads < 0 || threads > 1024,
             "threads must be in [0, 1024] (0 = hardware concurrency)");
    options.threads = static_cast<unsigned>(threads);

    sim::SuiteTiming timing;
    const auto result =
        sim::runSuite(workload::standardSuite(),
                      sim::figure6Predictors(), options, &timing);
    sim::printSuiteTable(std::cout, result, &timing);
    return 0;
}

int
cmdList()
{
    std::printf("profiles:\n");
    for (const auto &profile : workload::standardSuite())
        std::printf("  %-10s %s\n", profile.fullName().c_str(),
                    profile.note.c_str());
    std::printf("predictors:\n  BTB BTB2b GAp TC-PIB TC-PB TC-IND "
                "Dpath Cascade Cascade-strict\n  PPM-hyb PPM-PIB "
                "PPM-hyb-biased PPM-tagged PPM-gshare PPM-low\n"
                "  Filtered-PPM Oracle-PIB@<k>\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "text")
        return cmdConvert(argc, argv, true);
    if (cmd == "bin")
        return cmdConvert(argc, argv, false);
    if (cmd == "stat")
        return cmdStat(argc, argv);
    if (cmd == "run")
        return cmdRun(argc, argv);
    if (cmd == "suite")
        return cmdSuite(argc, argv);
    if (cmd == "list")
        return cmdList();
    return usage();
}
