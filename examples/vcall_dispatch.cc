/**
 * @file
 * Virtual-call dispatch scenario — the paper's Section-1 motivation.
 *
 * Models an object-oriented workload: a processing loop pulls objects
 * whose dynamic type depends on the program input (the driver) and on
 * type-test conditionals, then makes virtual calls through megamorphic
 * call sites.  Shows how each predictor generation improves on the
 * BTB for polymorphic call sites, and prints the per-site breakdown a
 * microarchitect would look at.
 *
 * Build & run:  ./build/examples/vcall_dispatch [num_records]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/trace_stats.hh"
#include "workload/program.hh"
#include "sim/engine.hh"
#include "sim/factory.hh"

namespace {

using namespace ibp::workload;

/** An OO processing loop: type tests + polymorphic virtual calls. */
SynthesisParams
vcallWorkload()
{
    SynthesisParams params;
    params.seed = 0xC0DE;
    params.caseCondBias = 0.7;  // type tests are mildly skewed
    params.helperCondBias = 0.8;

    HotSiteSpec input;          // the object stream (program input)
    input.behavior = BehaviorClass::Uniform;
    input.numTargets = 4;

    HotSiteSpec vcall_pb;       // dispatch correlated with type tests
    vcall_pb.behavior = BehaviorClass::PbCorrelated;
    vcall_pb.call = true;
    vcall_pb.count = 3;
    vcall_pb.numTargets = 6;    // 6 overriders: megamorphic
    vcall_pb.order = 2;
    vcall_pb.noise = 0.01;

    HotSiteSpec vcall_pib;      // dispatch correlated with prior calls
    vcall_pib.behavior = BehaviorClass::PibCorrelated;
    vcall_pib.call = true;
    vcall_pib.count = 2;
    vcall_pib.numTargets = 6;
    vcall_pib.order = 3;
    vcall_pib.noise = 0.01;

    HotSiteSpec stable;         // effectively-final methods
    stable.behavior = BehaviorClass::Monomorphic;
    stable.call = true;
    stable.count = 6;
    stable.numTargets = 2;
    stable.noise = 0.002;

    params.sites = {input, vcall_pb, vcall_pib, stable};
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t records =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;

    Program program = synthesize(vcallWorkload());
    ibp::trace::TraceBuffer trace = program.collect(records);
    const auto stats = ibp::trace::characterize(trace);

    std::printf("OO dispatch workload: %llu branches, %llu virtual "
                "calls over %zu static call sites\n",
                static_cast<unsigned long long>(stats.totalBranches),
                static_cast<unsigned long long>(stats.mtIndirect),
                stats.staticMtSites());

    const std::vector<std::string> generations = {
        "BTB", "BTB2b", "TC-PIB", "Cascade", "PPM-hyb"};
    std::printf("\n%-10s %10s   %s\n", "predictor", "mispredict",
                "note");
    for (const auto &name : generations) {
        auto predictor = ibp::sim::makePredictor(name);
        ibp::sim::EngineConfig config;
        config.perSiteStats = name == "PPM-hyb";
        ibp::sim::Engine engine(config);
        trace.rewind();
        const auto metrics = engine.run(trace, *predictor);
        std::printf("%-10s %9.2f%%   %s\n", name.c_str(),
                    metrics.missPercent(),
                    name == "BTB" ? "most-recent target only"
                    : name == "BTB2b"
                        ? "+2-bit replacement hysteresis"
                    : name == "TC-PIB" ? "+path-history indexing"
                    : name == "Cascade" ? "+tags and filtering"
                                        : "+PPM, per-branch PB/PIB");

        if (config.perSiteStats) {
            std::printf("\nPPM-hyb worst call sites:\n");
            for (const auto &[pc, misses] : metrics.worstSites(3)) {
                const auto &site = stats.sites.at(pc);
                std::printf(
                    "  pc 0x%llx: %llu misses over %llu calls, "
                    "%zu receiver types\n",
                    static_cast<unsigned long long>(pc),
                    static_cast<unsigned long long>(misses),
                    static_cast<unsigned long long>(site.executions),
                    site.arity());
            }
        }
    }
    return 0;
}
