/**
 * @file
 * Whole-front-end scenario: sweep direction predictors x indirect
 * predictors over one benchmark and read fetch IPC — the view a
 * microarchitect takes when deciding where the next transistor goes.
 * Also prices the paper's Section-4 two-phase (BIU + table) PPM
 * lookup against a single-cycle idealization.
 *
 * Build & run:  ./build/examples/pipeline_model [profile] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/profiles.hh"
#include "sim/experiment.hh"
#include "sim/factory.hh"
#include "sim/frontend.hh"

int
main(int argc, char **argv)
{
    const char *profile_name = argc > 1 ? argv[1] : "troff.ped";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    const auto suite = ibp::workload::standardSuite();
    const auto *profile =
        ibp::workload::findProfile(suite, profile_name);
    if (!profile) {
        std::fprintf(stderr, "unknown profile %s\n", profile_name);
        return 2;
    }
    auto trace = ibp::sim::generateTrace(*profile, scale);

    std::printf("Front-end model on %s (4-wide fetch, 8-cycle "
                "redirect):\n\n",
                profile->fullName().c_str());
    std::printf("%-10s", "direction");
    const std::vector<std::string> indirect_names = {
        "BTB", "TC-PIB", "Cascade", "PPM-hyb"};
    for (const auto &name : indirect_names)
        std::printf(" %9s", name.c_str());
    std::printf("   (fetch IPC)\n");

    for (const char *direction : {"bimodal", "gshare", "PPM-cond"}) {
        std::printf("%-10s", direction);
        for (const auto &indirect_name : indirect_names) {
            ibp::sim::FrontendConfig config;
            config.directionPredictor = direction;
            config.instructionsPerBranch =
                profile->instructionsPerBranch;
            ibp::sim::Frontend frontend(config);
            auto indirect = ibp::sim::makePredictor(indirect_name);
            trace.rewind();
            const auto metrics = frontend.run(trace, *indirect);
            std::printf(" %9.2f", metrics.ipc());
        }
        std::printf("\n");
    }

    // Section 4: the hybrid PPM needs two table accesses (BIU, then
    // Markov tables); price the pipelined variant.
    ibp::sim::FrontendConfig config;
    config.instructionsPerBranch = profile->instructionsPerBranch;
    ibp::sim::Frontend flat(config);
    auto ppm_flat = ibp::sim::makePredictor("PPM-hyb");
    trace.rewind();
    const auto one_cycle = flat.run(trace, *ppm_flat);

    config.pipelinedIndirect = true;
    ibp::sim::Frontend staged(config);
    auto ppm_staged = ibp::sim::makePredictor("PPM-hyb");
    trace.rewind();
    const auto two_phase = staged.run(trace, *ppm_staged);

    std::printf("\nPPM-hyb as a 2-phase predictor (paper Section 4): "
                "IPC %.3f -> %.3f (%llu overrides, %.2f%% cost)\n",
                one_cycle.ipc(), two_phase.ipc(),
                static_cast<unsigned long long>(two_phase.overrides),
                100.0 * (1.0 - two_phase.ipc() / one_cycle.ipc()));
    return 0;
}
