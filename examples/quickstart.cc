/**
 * @file
 * Quickstart: the whole library in ~60 lines.
 *
 *   1. synthesize a workload and collect a branch trace,
 *   2. build the paper's PPM-hyb predictor (and a BTB for contrast),
 *   3. drive both through the trace-driven engine,
 *   4. read the misprediction ratios.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "workload/profiles.hh"
#include "workload/program.hh"
#include "predictors/btb.hh"
#include "core/ppm_predictor.hh"
#include "sim/engine.hh"

int
main()
{
    // 1. A small strongly-correlated workload (or pick any profile
    //    from ibp::workload::standardSuite()).
    const auto profile = ibp::workload::smokeProfile();
    ibp::workload::Program program =
        ibp::workload::synthesize(profile.program);
    ibp::trace::TraceBuffer trace = program.collect(profile.records);
    std::printf("workload: %s — %zu branch records\n",
                profile.fullName().c_str(), trace.size());

    // 2. The paper's order-10, 2K-entry PPM-hyb, and a 2K BTB.
    ibp::core::PpmPredictor ppm(
        ibp::core::paperPpmConfig(ibp::core::PpmVariant::Hybrid));
    ibp::pred::Btb btb(2048);

    // 3. Trace-driven simulation: returns go to a RAS, multi-target
    //    jmp/jsr go to the predictor under test.
    ibp::sim::Engine engine;
    const ibp::sim::RunMetrics ppm_metrics = engine.run(trace, ppm);
    trace.rewind();
    const ibp::sim::RunMetrics btb_metrics = engine.run(trace, btb);

    // 4. Results.
    std::printf("predicted MT indirect branches: %llu\n",
                static_cast<unsigned long long>(ppm_metrics.mtIndirect));
    std::printf("  %-8s misprediction ratio: %5.2f%%\n",
                ppm.name().c_str(), ppm_metrics.missPercent());
    std::printf("  %-8s misprediction ratio: %5.2f%%\n",
                btb.name().c_str(), btb_metrics.missPercent());
    std::printf("  returns under the RAS:       %5.2f%%\n",
                ppm_metrics.returnMisses.percent());
    std::printf("  PPM storage: %llu bits; PIB selected %4.1f%% of "
                "lookups\n",
                static_cast<unsigned long long>(ppm.storageBits()),
                100.0 * ppm.pibSelectRatio());
    return 0;
}
