/**
 * @file
 * budget_tool: runtime cross-check of tools/lint/budget_manifest.json
 * against the live predictor factory.
 *
 * The budget manifest has two halves.  The static half (class name +
 * geometry shape hash) is written by `ibp_lint --update-manifest` from
 * source text alone; the runtime half (`storage_bits`) can only come
 * from an actual build, because entry counts flow through the factory's
 * scaling helpers.  This tool closes the loop:
 *
 *  - `--check` (default): instantiate every manifest entry through
 *    sim::makePredictor() and fail — printing the manifest and live
 *    totals side by side — when any storageBits() disagrees, when a
 *    manifest entry no longer instantiates, or when a factory lineup
 *    name has no manifest entry.
 *  - `--update`: rewrite the manifest with the live storageBits()
 *    totals, leaving the static half untouched.
 *
 * The wildcard entry `Oracle-PIB@*` covers the whole Oracle-PIB@<k>
 * family; it is instantiated at the reference path length k=4 (the
 * lineup's Oracle-PIB@4).
 *
 * Exit codes: 0 clean / updated, 1 mismatch, 2 usage / IO error.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "util/json.hh"
#include "sim/factory.hh"

namespace {

struct ManifestEntry
{
    std::string className;
    std::string shape;
    std::uint64_t storageBits = 0;
};

/** The concrete name a manifest key is instantiated under: a trailing
 *  '*' (prefix wildcard) resolves to the reference member. */
std::string
instantiationName(const std::string &key)
{
    if (!key.empty() && key.back() == '*')
        return key.substr(0, key.size() - 1) + "4";
    return key;
}

/** True when lineup name @p name is covered by manifest key @p key. */
bool
covers(const std::string &key, const std::string &name)
{
    if (!key.empty() && key.back() == '*')
        return name.rfind(key.substr(0, key.size() - 1), 0) == 0;
    return key == name;
}

void
usage(std::ostream &out)
{
    out << "usage: budget_tool [--manifest <path>] [--check|--update]\n"
           "\n"
           "Cross-check (or record) the runtime storageBits() totals\n"
           "in the hardware-budget manifest.  --check is the default;\n"
           "it exits 1 printing manifest vs live totals on any\n"
           "disagreement.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path = "tools/lint/budget_manifest.json";
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--check") {
            update = false;
        } else if (arg == "--update") {
            update = true;
        } else if (arg == "--manifest") {
            if (i + 1 >= argc) {
                std::cerr << "budget_tool: --manifest requires a "
                             "value\n";
                return 2;
            }
            manifest_path = argv[++i];
        } else {
            std::cerr << "budget_tool: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    std::ifstream in(manifest_path, std::ios::binary);
    if (!in) {
        std::cerr << "budget_tool: cannot read " << manifest_path
                  << " (generate it with `ibp_lint "
                     "--update-manifest` first)\n";
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string comment;
    std::uint64_t format = 1;
    std::map<std::string, ManifestEntry> entries;
    try {
        const ibp::util::JsonValue doc =
            ibp::util::parseJson(buffer.str());
        if (const ibp::util::JsonValue *c = doc.find("comment"))
            comment = c->asString();
        if (const ibp::util::JsonValue *f = doc.find("format"))
            format = f->asUint();
        const ibp::util::JsonValue *predictors =
            doc.find("predictors");
        if (!predictors) {
            std::cerr << "budget_tool: " << manifest_path
                      << " has no \"predictors\" object\n";
            return 2;
        }
        for (const auto &[name, entry] : predictors->asObject()) {
            ManifestEntry parsed;
            if (const ibp::util::JsonValue *v = entry.find("class"))
                parsed.className = v->asString();
            if (const ibp::util::JsonValue *v = entry.find("shape"))
                parsed.shape = v->asString();
            if (const ibp::util::JsonValue *v =
                    entry.find("storage_bits"))
                parsed.storageBits = v->asUint();
            entries[name] = parsed;
        }
    } catch (const std::exception &error) {
        std::cerr << "budget_tool: " << manifest_path << ": "
                  << error.what() << "\n";
        return 2;
    }

    // Every lineup name must be covered by some manifest entry, so a
    // new factory registration cannot dodge the budget audit.
    int failures = 0;
    for (const std::string &name : ibp::sim::allPredictors()) {
        bool found = false;
        for (const auto &[key, entry] : entries) {
            (void)entry;
            if (covers(key, name))
                found = true;
        }
        if (!found) {
            std::cerr << "budget_tool: lineup predictor " << name
                      << " has no entry in " << manifest_path
                      << " (run `ibp_lint --update-manifest`)\n";
            ++failures;
        }
    }

    for (auto &[key, entry] : entries) {
        const std::string name = instantiationName(key);
        if (!ibp::sim::knownPredictor(name)) {
            std::cerr << "budget_tool: manifest entry " << key
                      << " is not a factory name (run `ibp_lint "
                         "--update-manifest` to prune it)\n";
            ++failures;
            continue;
        }
        const auto predictor = ibp::sim::makePredictor(name);
        const std::uint64_t live = predictor->storageBits();
        if (update) {
            entry.storageBits = live;
            continue;
        }
        if (live != entry.storageBits) {
            std::cerr << "budget_tool: storage mismatch for " << key
                      << " (class " << entry.className
                      << "): manifest records " << entry.storageBits
                      << " bits, live storageBits() reports " << live
                      << " bits — re-audit the geometry against the "
                         "2K-entry envelope, then run `budget_tool "
                         "--update`\n";
            ++failures;
        }
    }

    if (update) {
        std::ofstream out(manifest_path, std::ios::binary);
        if (!out) {
            std::cerr << "budget_tool: cannot write " << manifest_path
                      << "\n";
            return 2;
        }
        ibp::util::JsonWriter json(out);
        json.beginObject();
        json.key("comment").value(comment);
        json.key("format").value(format);
        json.key("predictors").beginObject();
        for (const auto &[key, entry] : entries) {
            json.key(key).beginObject();
            json.key("class").value(entry.className);
            json.key("shape").value(entry.shape);
            json.key("storage_bits").value(entry.storageBits);
            json.endObject();
        }
        json.endObject();
        json.endObject();
        out << "\n";
        std::cout << "budget_tool: recorded " << entries.size()
                  << " storage totals in " << manifest_path << "\n";
        return failures ? 1 : 0;
    }

    if (failures) {
        std::cout << "budget_tool: " << failures << " mismatch(es)\n";
        return 1;
    }
    std::cout << "budget_tool: " << entries.size()
              << " predictors match the recorded storage totals\n";
    return 0;
}
