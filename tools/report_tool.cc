/**
 * @file
 * report_tool: inspect and compare ibp_report.json run reports.
 *
 *   report_tool <report.json>                 pretty-print one report
 *   report_tool --diff <before> <after>       compare two reports
 *               [--tolerance <pct>]           accuracy gate, default 0
 *   report_tool --emit-golden <out.json>      run the golden-suite
 *                                             configuration and write
 *                                             its report
 *
 * --diff exits non-zero iff an accuracy delta beyond the tolerance (in
 * misprediction percentage points), a prediction-count mismatch, or a
 * matrix-shape mismatch is found; timing and probe deltas are printed
 * as informational notes only.  CI diffs fresh runs against the
 * committed tests/golden/report_small.json with --emit-golden.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "obs/report.hh"
#include "sim/experiment.hh"

namespace {

using namespace ibp;

int
usage()
{
    std::cerr
        << "usage: report_tool <report.json>\n"
        << "       report_tool --diff <before.json> <after.json>"
           " [--tolerance <pct>]\n"
        << "       report_tool --emit-golden <out.json>\n";
    return 2;
}

int
printOne(const std::string &path)
{
    const obs::RunReport report = obs::readReportFile(path);
    obs::printReport(std::cout, report);
    return 0;
}

int
diff(const std::string &before_path, const std::string &after_path,
     double tolerance)
{
    const obs::RunReport before = obs::readReportFile(before_path);
    const obs::RunReport after = obs::readReportFile(after_path);
    const obs::ReportDiff result =
        obs::diffReports(before, after, tolerance);
    obs::printDiff(std::cout, result);
    return result.clean() ? 0 : 1;
}

/**
 * The golden-suite configuration (kept in lockstep with
 * tests/test_golden_suite.cc): perl/eon/gs.tig at scale 0.02 through
 * BTB, TC-PIB, Cascade, PPM-hyb, ITTAGE and Perceptron on the serial path, so the
 * accuracy section is bit-reproducible across runs and machines.
 */
int
emitGolden(const std::string &out_path)
{
    const std::vector<std::string> profile_names = {"perl", "eon",
                                                    "gs.tig"};
    const std::vector<std::string> predictors = {
        "BTB", "TC-PIB", "Cascade", "PPM-hyb", "ITTAGE", "Perceptron"};

    const auto suite = workload::standardSuite();
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &name : profile_names) {
        const auto *profile = workload::findProfile(suite, name);
        fatal_if(profile == nullptr, "standard suite lost profile ",
                 name);
        profiles.push_back(*profile);
    }

    sim::SuiteOptions options;
    options.traceScale = 0.02;
    options.threads = 1;
    sim::SuiteTiming timing;
    const sim::SuiteResult result =
        sim::runSuite(profiles, predictors, options, &timing);

    const obs::RunReport report = sim::buildRunReport(
        "report_tool --emit-golden", options, result, timing);
    obs::writeReportFile(out_path, report);
    std::cout << "wrote " << out_path << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();

    if (args[0] == "--diff") {
        double tolerance = 0;
        std::vector<std::string> paths;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--tolerance") {
                if (++i == args.size())
                    return usage();
                tolerance = std::strtod(args[i].c_str(), nullptr);
            } else {
                paths.push_back(args[i]);
            }
        }
        if (paths.size() != 2 || tolerance < 0)
            return usage();
        return diff(paths[0], paths[1], tolerance);
    }

    if (args[0] == "--emit-golden")
        return args.size() == 2 ? emitGolden(args[1]) : usage();

    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage();
    return printOne(args[0]);
}
