#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/json.hh"

#include "lexer.hh"

namespace ibp::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Layer model

/** The enforced include DAG, lowest layer first.  A file in layer L
 *  may include headers from layers with rank <= rank(L) only. */
const std::vector<std::string> kLayers = {
    "util", "trace", "obs", "workload", "predictors", "core", "sim",
};

constexpr int kRankLocal = -1;   ///< "bench_util.hh"-style local header
constexpr int kRankUnknown = 50; ///< quoted path outside the DAG
constexpr int kRankApp = 100;    ///< bench/tools/tests/examples

int
layerRank(const std::string &layer)
{
    for (std::size_t i = 0; i < kLayers.size(); ++i)
        if (kLayers[i] == layer)
            return static_cast<int>(i);
    return kRankUnknown;
}

/** First path segment of an include path ("util/json.hh" -> "util"). */
std::string
firstSegment(const std::string &path)
{
    const std::size_t slash = path.find('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

bool
isAppDir(const std::string &dir)
{
    return dir == "bench" || dir == "tools" || dir == "tests" ||
           dir == "examples";
}

// ---------------------------------------------------------------------
// Per-file state

struct SourceFile
{
    std::string relPath;
    std::string dir;     ///< "src", "bench", "tools", ...
    std::string layer;   ///< src layer name, empty for app tier
    int rank = kRankApp; ///< layer rank, kRankApp for app tier
    std::string text;
    std::vector<std::string> lines;
    LexedFile lexed;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    return lines;
}

// ---------------------------------------------------------------------
// Class model (serde-coverage, serde-manifest, probe-name)

struct ClassInfo
{
    std::string name;
    std::string file;
    int line = 0;
    std::vector<std::string> bases;
    std::set<std::string> methods; ///< identifiers called/declared with
                                   ///< '(' at class-body depth 1
    bool declaresSaveState = false;
    std::string shapeHash; ///< hex FNV-1a of the data-member tokens
};

std::string
fnv1a(const std::vector<std::string> &tokens)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const std::string &token : tokens) {
        for (const char c : token) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
        hash ^= 0x1f; // token separator
        hash *= 1099511628211ULL;
    }
    std::ostringstream hex;
    hex << std::hex;
    hex.width(16);
    hex.fill('0');
    hex << hash;
    return hex.str();
}

/** Index of the token matching the brace/paren opened at @p open
 *  (tokens[open] must be "{" or "("); tokens.size() if unbalanced. */
std::size_t
matchingClose(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &opener = tokens[open].text;
    const std::string closer = opener == "{" ? "}" : ")";
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == opener)
            ++depth;
        else if (tokens[i].text == closer && --depth == 0)
            return i;
    }
    return tokens.size();
}

bool
isAccessSpecifier(const std::string &text)
{
    return text == "public" || text == "private" || text == "protected";
}

/**
 * Hash the serialized-shape-relevant declarations of a class body:
 * every depth-1 statement that looks like a data member or nested type
 * definition.  Chunks containing a top-level '(' (function
 * declarations, macro splices like IBP_PROBE(...)) and chunks starting
 * with using/typedef/friend/template/static are skipped; brace-init
 * members and nested struct/enum bodies are included.  The result is a
 * deliberately coarse fingerprint: any change to it means the
 * checkpoint byte stream may have changed shape.
 */
std::string
shapeHash(const std::vector<Token> &tokens, std::size_t bodyBegin,
          std::size_t bodyEnd)
{
    std::vector<std::string> shape;
    std::vector<std::string> chunk;
    bool chunkHasParen = false;

    const auto flush = [&](bool keep) {
        if (keep && !chunk.empty() && !chunkHasParen) {
            static const std::set<std::string> excluded = {
                "using", "typedef", "friend", "template", "static",
            };
            if (!excluded.count(chunk.front()))
                for (std::string &t : chunk)
                    shape.push_back(std::move(t));
        }
        chunk.clear();
        chunkHasParen = false;
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        const Token &token = tokens[i];
        if (isAccessSpecifier(token.text) && i + 1 < bodyEnd &&
            tokens[i + 1].text == ":") {
            flush(false);
            ++i;
            continue;
        }
        if (token.text == "(") {
            chunkHasParen = true;
            i = std::min(matchingClose(tokens, i), bodyEnd);
            continue;
        }
        if (token.text == "{") {
            const std::size_t close =
                std::min(matchingClose(tokens, i), bodyEnd);
            if (chunkHasParen) {
                // Function definition: skip the body, drop the chunk.
                i = close;
                flush(false);
            } else {
                // Brace-init member or nested type definition: its
                // contents are shape-relevant.
                for (std::size_t j = i; j <= close && j < bodyEnd; ++j)
                    chunk.push_back(tokens[j].text);
                i = close;
            }
            continue;
        }
        if (token.text == ";") {
            flush(true);
            continue;
        }
        chunk.push_back(token.text);
    }
    flush(true);
    return fnv1a(shape);
}

/** Extract every class/struct definition from one lexed file. */
std::vector<ClassInfo>
extractClasses(const SourceFile &file)
{
    std::vector<ClassInfo> classes;
    const std::vector<Token> &tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            (tokens[i].text != "class" && tokens[i].text != "struct"))
            continue;
        if (i > 0 && tokens[i - 1].text == "enum")
            continue; // enum class
        std::size_t j = i + 1;
        if (j >= tokens.size() ||
            tokens[j].kind != TokenKind::Identifier)
            continue; // anonymous
        ClassInfo info;
        info.name = tokens[j].text;
        info.file = file.relPath;
        info.line = tokens[i].line;
        ++j;
        if (j < tokens.size() && tokens[j].text == "final")
            ++j;
        if (j < tokens.size() && tokens[j].text == ":") {
            // Base clause: remember the last identifier of each
            // qualified base name at angle depth 0.
            int angle = 0;
            std::string last;
            ++j;
            for (; j < tokens.size() && tokens[j].text != ";" &&
                   !(tokens[j].text == "{" && angle == 0);
                 ++j) {
                const Token &t = tokens[j];
                if (t.text == "<")
                    ++angle;
                else if (t.text == ">")
                    --angle;
                else if (t.text == "," && angle == 0) {
                    if (!last.empty())
                        info.bases.push_back(last);
                    last.clear();
                } else if (t.kind == TokenKind::Identifier &&
                           angle == 0 && t.text != "virtual" &&
                           !isAccessSpecifier(t.text)) {
                    last = t.text;
                }
            }
            if (!last.empty())
                info.bases.push_back(last);
        }
        if (j >= tokens.size() || tokens[j].text != "{")
            continue; // forward declaration or variable
        const std::size_t bodyBegin = j + 1;
        const std::size_t bodyEnd = matchingClose(tokens, j);

        int depth = 1;
        for (std::size_t k = bodyBegin; k < bodyEnd; ++k) {
            const Token &t = tokens[k];
            if (t.text == "{")
                ++depth;
            else if (t.text == "}")
                --depth;
            else if (depth == 1 &&
                     t.kind == TokenKind::Identifier &&
                     k + 1 < bodyEnd && tokens[k + 1].text == "(")
                info.methods.insert(t.text);
        }
        info.declaresSaveState = info.methods.count("saveState") > 0;
        if (info.declaresSaveState || !info.bases.empty())
            info.shapeHash = shapeHash(tokens, bodyBegin, bodyEnd);
        classes.push_back(std::move(info));
    }
    return classes;
}

// ---------------------------------------------------------------------
// The lint context

class Linter
{
  public:
    explicit Linter(const Options &options) : options_(options) {}

    Result
    run()
    {
        collectFiles();
        for (SourceFile &file : files_) {
            ruleLayering(file);
            ruleIncludeOrder(file);
            ruleDeterminismTokens(file);
            ruleUnorderedIteration(file);
            ruleTableModulo(file);
        }
        buildClassModel();
        ruleSerdeCoverage();
        ruleSerdeManifest();
        ruleProbeNames();
        applyFixes();
        std::sort(result_.findings.begin(), result_.findings.end(),
                  [](const Finding &a, const Finding &b) {
                      return std::tie(a.file, a.line, a.rule) <
                             std::tie(b.file, b.line, b.rule);
                  });
        return std::move(result_);
    }

  private:
    bool
    ruleEnabled(const std::string &rule) const
    {
        return options_.onlyRules.empty() ||
               options_.onlyRules.count(rule) > 0;
    }

    /** Report a finding unless an allow() pragma on the same or the
     *  preceding line suppresses it. */
    void
    report(const SourceFile &file, const std::string &rule, int line,
           std::string message)
    {
        if (!ruleEnabled(rule))
            return;
        for (int at = line; at >= line - 1; --at) {
            auto it = file.lexed.allows.find(at);
            if (it != file.lexed.allows.end() &&
                (it->second.count(rule) || it->second.count("all"))) {
                ++result_.suppressed;
                return;
            }
        }
        result_.findings.push_back(
            Finding{rule, file.relPath, line, std::move(message)});
    }

    void
    collectFiles()
    {
        const fs::path root(options_.root);
        std::vector<std::string> rels;
        for (const char *top :
             {"src", "bench", "tools", "tests", "examples"}) {
            const fs::path dir = root / top;
            if (!fs::is_directory(dir))
                continue;
            for (auto it = fs::recursive_directory_iterator(dir);
                 it != fs::recursive_directory_iterator(); ++it) {
                const fs::path &path = it->path();
                const std::string rel =
                    fs::relative(path, root).generic_string();
                if (it->is_directory()) {
                    // Intentionally-broken lint fixtures and build
                    // trees are not part of the linted tree.
                    if (rel == "tests/lint_fixtures" ||
                        path.filename().string().rfind("build", 0) ==
                            0)
                        it.disable_recursion_pending();
                    continue;
                }
                const std::string ext = path.extension().string();
                if (ext == ".hh" || ext == ".cc")
                    rels.push_back(rel);
            }
        }
        std::sort(rels.begin(), rels.end());
        for (const std::string &rel : rels) {
            SourceFile file;
            file.relPath = rel;
            const std::size_t slash = rel.find('/');
            file.dir = rel.substr(0, slash);
            if (file.dir == "src") {
                const std::size_t next = rel.find('/', slash + 1);
                if (next != std::string::npos) {
                    file.layer =
                        rel.substr(slash + 1, next - slash - 1);
                    file.rank = layerRank(file.layer);
                }
            }
            std::ifstream in(root / rel, std::ios::binary);
            if (!in) {
                std::cerr << "ibp_lint: cannot read " << rel << "\n";
                continue;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            file.text = buffer.str();
            file.lines = splitLines(file.text);
            file.lexed = lexFile(file.text);
            result_.scannedFiles.push_back(rel);
            files_.push_back(std::move(file));
        }
    }

    // -----------------------------------------------------------------
    // Rule: layering

    void
    ruleLayering(const SourceFile &file)
    {
        for (const Include &include : file.lexed.includes) {
            if (include.angled)
                continue;
            const std::string segment = firstSegment(include.path);
            if (file.dir == "src") {
                if (isAppDir(segment)) {
                    report(file, "layering", include.line,
                           "src/ must not include \"" + include.path +
                               "\": " + segment +
                               "/ headers sit above the library "
                               "layers");
                    continue;
                }
                const int rank = layerRank(segment);
                if (rank == kRankUnknown)
                    continue; // relative or generated header
                if (rank > file.rank) {
                    std::string allowed;
                    for (int i = 0; i <= file.rank; ++i)
                        allowed += (i ? ", " : "") + kLayers[i];
                    report(file, "layering", include.line,
                           "back-edge include \"" + include.path +
                               "\": " + segment + " (layer " +
                               std::to_string(rank) +
                               ") is above " + file.layer +
                               " (layer " +
                               std::to_string(file.rank) +
                               "); allowed layers: " + allowed);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: include-order (fixable)

    struct IncludeRun
    {
        std::vector<std::size_t> members; ///< indices into includes
        int startLine = 0;
    };

    /** Sort key for one project include within a run. */
    static std::pair<int, std::string>
    orderKey(const SourceFile &file, const Include &include,
             bool isFirstInclude)
    {
        const std::string segment = firstSegment(include.path);
        if (segment.empty())
            return {kRankLocal, include.path};
        // The own header of a .cc stays first, matching the
        // include-what-you-use convention.
        if (isFirstInclude && file.relPath.size() >= 3 &&
            file.relPath.compare(file.relPath.size() - 3, 3, ".cc") ==
                0) {
            const std::string stem = fs::path(file.relPath)
                                         .stem()
                                         .string();
            if (fs::path(include.path).stem().string() == stem)
                return {kRankLocal - 1, include.path};
        }
        return {layerRank(segment), include.path};
    }

    void
    ruleIncludeOrder(SourceFile &file)
    {
        const std::vector<Include> &includes = file.lexed.includes;
        std::vector<IncludeRun> runs;
        IncludeRun current;
        int prevLine = -10;
        for (std::size_t i = 0; i < includes.size(); ++i) {
            const Include &include = includes[i];
            if (include.angled) {
                prevLine = -10;
                continue;
            }
            if (include.line != prevLine + 1) {
                if (current.members.size() > 1)
                    runs.push_back(current);
                current = IncludeRun{};
                current.startLine = include.line;
            }
            current.members.push_back(i);
            prevLine = include.line;
        }
        if (current.members.size() > 1)
            runs.push_back(current);

        for (const IncludeRun &run : runs) {
            std::vector<std::size_t> sorted = run.members;
            std::sort(sorted.begin(), sorted.end(),
                      [&](std::size_t a, std::size_t b) {
                          return orderKey(file, includes[a], a == 0) <
                                 orderKey(file, includes[b], b == 0);
                      });
            if (sorted == run.members)
                continue;
            std::string want;
            for (std::size_t idx : sorted)
                want += (want.empty() ? "\"" : ", \"") +
                        includes[idx].path + "\"";
            report(file, "include-order", run.startLine,
                   "project includes not in layer order; expected " +
                       want + " (ibp_lint --fix reorders them)");
            FixRun fix;
            fix.file = &file;
            for (std::size_t idx : run.members)
                fix.lines.push_back(includes[idx].line);
            for (std::size_t idx : sorted)
                fix.sortedLines.push_back(includes[idx].line);
            fixRuns_.push_back(std::move(fix));
        }
    }

    // -----------------------------------------------------------------
    // Rules: determinism-random, determinism-clock

    void
    ruleDeterminismTokens(const SourceFile &file)
    {
        // obs/cputime.hh is the one sanctioned clock shim; everything
        // else — including the rest of the obs layer (timelines,
        // trace events, phase timers) — must read time through
        // obs::wallSeconds()/threadCpuSeconds() so every clock read
        // funnels through a single auditable chokepoint.
        if (file.dir != "src" || file.relPath == "src/obs/cputime.hh")
            return;
        const bool in_obs = file.layer == "obs";
        static const std::set<std::string> banned_random = {
            "rand",    "srand",   "rand_r",        "drand48",
            "lrand48", "mrand48", "random_device",
        };
        const std::vector<Token> &tokens = file.lexed.tokens;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.kind != TokenKind::Identifier)
                continue;
            const bool called =
                i + 1 < tokens.size() && tokens[i + 1].text == "(";
            if (banned_random.count(token.text) &&
                (called || token.text == "random_device")) {
                report(file, "determinism-random", token.line,
                       "non-deterministic source `" + token.text +
                           "` (use util::Rng, which is seeded and "
                           "checkpointable)");
                continue;
            }
            if (token.text == "now" && called && i > 0 &&
                tokens[i - 1].text == "::" &&
                i + 2 < tokens.size() && tokens[i + 2].text == ")") {
                report(file, "determinism-clock", token.line,
                       in_obs
                           ? "raw ::now() clock read in obs/ outside "
                             "cputime.hh (route timeline/trace-event "
                             "timestamps through obs::wallSeconds())"
                           : "raw ::now() wall-clock read outside "
                             "obs/ (use obs::wallSeconds()/"
                             "obs::PhaseTimer so every clock read is "
                             "auditable)");
                continue;
            }
            if (token.text == "time" && called) {
                const bool qualified =
                    i > 0 && tokens[i - 1].text == "::";
                const bool argless_form =
                    i + 2 < tokens.size() &&
                    (tokens[i + 2].text == "0" ||
                     tokens[i + 2].text == "NULL" ||
                     tokens[i + 2].text == "nullptr");
                if (qualified || argless_form)
                    report(file, "determinism-clock", token.line,
                           "time() wall-clock read outside obs/");
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: determinism-unordered-iter

    void
    ruleUnorderedIteration(const SourceFile &file)
    {
        if (file.dir != "src")
            return;
        const std::vector<Token> &tokens = file.lexed.tokens;

        // Names declared directly as unordered containers (members or
        // locals).  Container-of-container declarations are skipped:
        // iterating the outer vector is deterministic.
        std::set<std::string> unordered;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.text != "unordered_map" &&
                token.text != "unordered_set" &&
                token.text != "unordered_multimap" &&
                token.text != "unordered_multiset")
                continue;
            std::size_t j = i + 1;
            if (j < tokens.size() && tokens[j].text == "<") {
                int angle = 0;
                for (; j < tokens.size(); ++j) {
                    if (tokens[j].text == "<")
                        ++angle;
                    else if (tokens[j].text == ">" && --angle == 0) {
                        ++j;
                        break;
                    } else if (tokens[j].text == ";" ||
                               tokens[j].text == "{")
                        break; // not a template argument list
                }
            }
            while (j < tokens.size() && (tokens[j].text == "*" ||
                                         tokens[j].text == "&" ||
                                         tokens[j].text == "const"))
                ++j;
            if (j < tokens.size() &&
                tokens[j].kind == TokenKind::Identifier)
                unordered.insert(tokens[j].text);
        }
        if (unordered.empty())
            return;

        // Range-for loops whose range expression names one of them.
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
            if (tokens[i].text != "for" || tokens[i + 1].text != "(")
                continue;
            const std::size_t close = matchingClose(tokens, i + 1);
            // Find the range-for ':' at paren depth 1 (skip "::").
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (tokens[j].text == "(")
                    ++depth;
                else if (tokens[j].text == ")")
                    --depth;
                else if (tokens[j].text == ";")
                    break; // classic for loop
                else if (tokens[j].text == ":" && depth == 1) {
                    colon = j;
                    break;
                }
            }
            if (colon == 0)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (tokens[j].kind == TokenKind::Identifier &&
                    unordered.count(tokens[j].text)) {
                    report(file, "determinism-unordered-iter",
                           tokens[j].line,
                           "iteration over unordered container `" +
                               tokens[j].text +
                               "`: traversal order is "
                               "implementation-defined and leaks "
                               "into metrics/reports/serde (sort "
                               "into a vector or use std::map / "
                               "util::FlatMap)");
                    break;
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: table-modulo

    void
    ruleTableModulo(const SourceFile &file)
    {
        if (file.layer != "core" && file.layer != "predictors")
            return;
        static const std::set<std::string> exempt_calls = {
            "fatal_if", "panic_if",      "fatal",
            "panic",    "static_assert", "assert",
            "ibp_table_check",
        };
        const std::vector<Token> &tokens = file.lexed.tokens;
        int depth = 0;
        std::vector<int> exempt_depths;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.text == "(") {
                ++depth;
                if (i > 0 &&
                    tokens[i - 1].kind == TokenKind::Identifier &&
                    exempt_calls.count(tokens[i - 1].text))
                    exempt_depths.push_back(depth);
            } else if (token.text == ")") {
                if (!exempt_depths.empty() &&
                    exempt_depths.back() == depth)
                    exempt_depths.pop_back();
                --depth;
            } else if (token.text == "%" && exempt_depths.empty()) {
                report(file, "table-modulo", token.line,
                       "modulo indexing in the predictor layers: use "
                       "Table::reduce() or util::reduceIndex() "
                       "(masked on power-of-two geometries, PR 2)");
            }
        }
    }

    // -----------------------------------------------------------------
    // Class model + serde rules

    void
    buildClassModel()
    {
        for (const SourceFile &file : files_) {
            if (file.dir != "src")
                continue;
            for (ClassInfo &info : extractClasses(file)) {
                auto [it, fresh] =
                    classes_.try_emplace(info.name, info);
                if (!fresh) {
                    // Same name in two files (nested helpers like
                    // "Slot"): key the duplicate by file to keep the
                    // manifest deterministic.
                    classes_.try_emplace(
                        info.name + "@" + info.file, info);
                }
                fileByPath_.emplace(info.file, nullptr);
            }
        }
    }

    const SourceFile *
    findFile(const std::string &relPath) const
    {
        for (const SourceFile &file : files_)
            if (file.relPath == relPath)
                return &file;
        return nullptr;
    }

    /** True when @p name transitively derives from IndirectPredictor
     *  through classes visible in the tree. */
    bool
    derivesFromPredictor(const std::string &name,
                         std::set<std::string> &seen) const
    {
        if (!seen.insert(name).second)
            return false;
        auto it = classes_.find(name);
        if (it == classes_.end())
            return false;
        for (const std::string &base : it->second.bases) {
            if (base == "IndirectPredictor")
                return true;
            if (derivesFromPredictor(base, seen))
                return true;
        }
        return false;
    }

    /** True when @p name or a proper ancestor *below* the
     *  IndirectPredictor root declares @p method. */
    bool
    declaresThroughChain(const std::string &name,
                         const std::string &method,
                         std::set<std::string> &seen) const
    {
        if (name == "IndirectPredictor" || name == "Predictor")
            return false; // the root's no-op default does not count
        if (!seen.insert(name).second)
            return false;
        auto it = classes_.find(name);
        if (it == classes_.end())
            return false;
        if (it->second.methods.count(method))
            return true;
        for (const std::string &base : it->second.bases) {
            std::set<std::string> chain = seen;
            if (declaresThroughChain(base, method, chain))
                return true;
        }
        return false;
    }

    /** Parse sim/factory.cc: registered name -> implementing class. */
    void
    parseFactory()
    {
        const SourceFile *factory = findFile("src/sim/factory.cc");
        if (!factory)
            return;
        const std::vector<Token> &tokens = factory->lexed.tokens;
        // Find the makePredictor() definition body.
        std::size_t body_begin = 0, body_end = 0;
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
            if (tokens[i].text != "makePredictor" ||
                tokens[i + 1].text != "(")
                continue;
            const std::size_t params = matchingClose(tokens, i + 1);
            if (params + 1 < tokens.size() &&
                tokens[params + 1].text == "{") {
                body_begin = params + 2;
                body_end = matchingClose(tokens, params + 1);
                break;
            }
        }
        if (body_begin == 0)
            return;
        std::set<std::string> pending;
        for (std::size_t i = body_begin; i < body_end; ++i) {
            const Token &token = tokens[i];
            // "==" is two Punct tokens in this lexer.
            if (token.text == "=" && i + 2 < body_end &&
                tokens[i + 1].text == "=" &&
                tokens[i + 2].kind == TokenKind::String) {
                pending.insert(tokens[i + 2].text);
            } else if (token.text == "starts_with" &&
                       i + 2 < body_end &&
                       tokens[i + 1].text == "(" &&
                       tokens[i + 2].kind == TokenKind::String) {
                pending.insert(tokens[i + 2].text + "*");
            } else if (token.text == "make_unique" &&
                       i + 1 < body_end &&
                       tokens[i + 1].text == "<") {
                std::string cls;
                for (std::size_t j = i + 2;
                     j < body_end && tokens[j].text != ">"; ++j)
                    if (tokens[j].kind == TokenKind::Identifier)
                        cls = tokens[j].text;
                for (const std::string &name : pending)
                    result_.factoryPredictors[name] = cls;
                pending.clear();
            }
        }
    }

    void
    ruleSerdeCoverage()
    {
        parseFactory();
        // Every factory-registered class plus every class deriving
        // from IndirectPredictor must carry the full serde surface.
        std::set<std::string> required;
        for (const auto &[name, cls] : result_.factoryPredictors) {
            (void)name;
            if (!cls.empty())
                required.insert(cls);
        }
        for (const auto &[name, info] : classes_) {
            (void)info;
            std::set<std::string> seen;
            if (derivesFromPredictor(name, seen))
                required.insert(name);
        }
        for (const std::string &name : required) {
            auto it = classes_.find(name);
            if (it == classes_.end()) {
                // Registered in the factory but not found in src/.
                Finding finding;
                finding.rule = "serde-coverage";
                finding.file = "src/sim/factory.cc";
                finding.message =
                    "factory registers class `" + name +
                    "` but no definition was found under src/";
                if (ruleEnabled(finding.rule))
                    result_.findings.push_back(std::move(finding));
                continue;
            }
            const ClassInfo &info = it->second;
            const SourceFile *file = findFile(info.file);
            for (const char *method :
                 {"saveState", "loadState", "snapshotProbes"}) {
                std::set<std::string> seen;
                if (declaresThroughChain(name, method, seen))
                    continue;
                const std::string message =
                    "predictor class `" + name + "` does not declare " +
                    method +
                    "() (directly or via a base): checkpoints would "
                    "silently skip its state";
                if (file)
                    report(*file, "serde-coverage", info.line,
                           message);
            }
        }
    }

    void
    ruleSerdeManifest()
    {
        // Tracked set: every class that declares saveState() itself.
        std::map<std::string, const ClassInfo *> tracked;
        for (const auto &[key, info] : classes_)
            if (info.declaresSaveState)
                tracked.emplace(key, &info);
        for (const auto &[key, info] : tracked)
            result_.serdeHashes[key] = info->shapeHash;

        const fs::path manifest_path =
            fs::path(options_.root) / options_.manifestPath;

        if (options_.updateManifest) {
            fs::create_directories(manifest_path.parent_path());
            std::ofstream out(manifest_path);
            util::JsonWriter json(out);
            json.beginObject();
            json.key("comment").value(
                "Serialized-state shape manifest, generated by "
                "`ibp_lint --update-manifest`.  Each entry hashes the "
                "data-member declarations of a class that implements "
                "saveState(); the serde-manifest lint rule fails when "
                "a hash drifts, forcing a conscious review of "
                "checkpoint compatibility (and a format-version bump "
                "where needed) before regenerating.");
            json.key("format").value(1);
            json.key("classes").beginObject();
            for (const auto &[key, info] : tracked)
                json.key(key).value(info->shapeHash);
            json.endObject();
            json.endObject();
            out << "\n";
            result_.manifestUpdated = true;
            return;
        }

        if (!fs::exists(manifest_path)) {
            if (tracked.empty())
                return; // nothing checkpointed, nothing to pin
            Finding finding;
            finding.rule = "serde-manifest";
            finding.file = options_.manifestPath;
            finding.message =
                "serde manifest missing; generate it with "
                "`ibp_lint --update-manifest`";
            if (ruleEnabled(finding.rule))
                result_.findings.push_back(std::move(finding));
            return;
        }
        std::ifstream in(manifest_path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const util::JsonValue doc = util::parseJson(buffer.str());
        const util::JsonValue *recorded = doc.find("classes");
        std::map<std::string, std::string> old_hashes;
        if (recorded)
            for (const auto &[key, value] : recorded->asObject())
                old_hashes[key] = value.asString();

        for (const auto &[key, info] : tracked) {
            const SourceFile *file = findFile(info->file);
            auto it = old_hashes.find(key);
            if (it == old_hashes.end()) {
                if (file)
                    report(*file, "serde-manifest", info->line,
                           "class `" + key +
                               "` implements saveState() but has no "
                               "serde manifest entry; review its "
                               "checkpoint format, then run "
                               "`ibp_lint --update-manifest`");
                continue;
            }
            if (it->second != info->shapeHash && file)
                report(*file, "serde-manifest", info->line,
                       "serialized-state shape of `" + key +
                           "` changed (manifest " + it->second +
                           ", tree " + info->shapeHash +
                           "): audit saveState()/loadState() and "
                           "bump the relevant format version, then "
                           "run `ibp_lint --update-manifest`");
        }
        for (const auto &[key, hash] : old_hashes) {
            (void)hash;
            if (!tracked.count(key)) {
                Finding finding;
                finding.rule = "serde-manifest";
                finding.file = options_.manifestPath;
                finding.message =
                    "manifest entry `" + key +
                    "` has no matching class in src/; run "
                    "`ibp_lint --update-manifest`";
                if (ruleEnabled(finding.rule))
                    result_.findings.push_back(std::move(finding));
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: probe-name

    static bool
    validProbeName(const std::string &name)
    {
        if (name.empty() || name.front() == '/' || name.back() == '/')
            return false;
        bool segment_empty = true;
        for (const char c : name) {
            if (c == '/') {
                if (segment_empty)
                    return false;
                segment_empty = true;
            } else if ((c >= 'a' && c <= 'z') ||
                       (c >= '0' && c <= '9') || c == '_') {
                segment_empty = false;
            } else {
                return false;
            }
        }
        return !segment_empty;
    }

    void
    ruleProbeNames()
    {
        for (const SourceFile &file : files_) {
            if (file.dir != "src")
                continue;
            const std::vector<Token> &tokens = file.lexed.tokens;
            for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
                if (tokens[i].text != "snapshotProbes" ||
                    tokens[i + 1].text != "(")
                    continue;
                std::size_t j = matchingClose(tokens, i + 1) + 1;
                while (j < tokens.size() &&
                       (tokens[j].text == "const" ||
                        tokens[j].text == "override" ||
                        tokens[j].text == "final" ||
                        tokens[j].text == "noexcept"))
                    ++j;
                if (j >= tokens.size() || tokens[j].text != "{")
                    continue; // declaration only
                const std::size_t body_end = matchingClose(tokens, j);
                for (std::size_t k = j; k + 3 < body_end; ++k) {
                    if (tokens[k].text != "." ||
                        (tokens[k + 1].text != "counter" &&
                         tokens[k + 1].text != "histogram") ||
                        tokens[k + 2].text != "(" ||
                        tokens[k + 3].kind != TokenKind::String)
                        continue;
                    const std::string &name = tokens[k + 3].text;
                    if (!validProbeName(name))
                        report(file, "probe-name", tokens[k + 3].line,
                               "probe name \"" + name +
                                   "\" violates the convention "
                                   "[a-z0-9_]+(/[a-z0-9_]+)*");
                }
                i = body_end;
            }
        }
    }

    // -----------------------------------------------------------------
    // --fix engine (include reordering)

    struct FixRun
    {
        SourceFile *file = nullptr;
        std::vector<int> lines;       ///< original 1-based line slots
        std::vector<int> sortedLines; ///< source line for each slot
    };

    void
    applyFixes()
    {
        if (!options_.fix && !options_.fixDryRun)
            return;
        std::map<SourceFile *, std::vector<FixRun *>> by_file;
        for (FixRun &run : fixRuns_)
            by_file[run.file].push_back(&run);

        std::ostringstream diff;
        for (auto &[file, runs] : by_file) {
            std::vector<std::string> lines = file->lines;
            diff << "--- a/" << file->relPath << "\n"
                 << "+++ b/" << file->relPath << "\n";
            for (const FixRun *run : runs) {
                diff << "@@ -" << run->lines.front() << ","
                     << run->lines.size() << " +"
                     << run->lines.front() << ","
                     << run->lines.size() << " @@\n";
                for (int line : run->lines)
                    diff << "-" << file->lines[line - 1] << "\n";
                for (int line : run->sortedLines)
                    diff << "+" << file->lines[line - 1] << "\n";
                for (std::size_t i = 0; i < run->lines.size(); ++i)
                    lines[run->lines[i] - 1] =
                        file->lines[run->sortedLines[i] - 1];
            }
            if (options_.fix) {
                std::ofstream out(fs::path(options_.root) /
                                  file->relPath);
                for (const std::string &line : lines)
                    out << line << "\n";
                for (Finding &finding : result_.findings)
                    if (finding.rule == "include-order" &&
                        finding.file == file->relPath)
                        finding.fixed = true;
            }
        }
        result_.fixDiff = diff.str();
    }

    Options options_;
    Result result_;
    std::vector<SourceFile> files_;
    std::map<std::string, ClassInfo> classes_;
    std::map<std::string, const SourceFile *> fileByPath_;
    std::vector<FixRun> fixRuns_;
};

} // namespace

Result
runLint(const Options &options)
{
    return Linter(options).run();
}

int
exitCodeFor(const Result &result)
{
    for (const Finding &finding : result.findings)
        if (!finding.fixed)
            return 1;
    return 0;
}

void
writeJsonReport(std::ostream &out, const Options &options,
                const Result &result)
{
    util::JsonWriter json(out);
    json.beginObject();
    json.key("schema").value("ibp-lint-v1");
    json.key("root").value(options.root);
    json.key("clean").value(exitCodeFor(result) == 0);
    json.key("files_scanned")
        .value(static_cast<std::uint64_t>(result.scannedFiles.size()));
    json.key("suppressed")
        .value(static_cast<std::int64_t>(result.suppressed));

    std::map<std::string, std::uint64_t> counts;
    for (const Finding &finding : result.findings)
        ++counts[finding.rule];
    json.key("counts").beginObject();
    for (const auto &[rule, count] : counts)
        json.key(rule).value(count);
    json.endObject();

    json.key("factory_predictors").beginObject();
    for (const auto &[name, cls] : result.factoryPredictors)
        json.key(name).value(cls);
    json.endObject();

    json.key("serde_classes").beginObject();
    for (const auto &[name, hash] : result.serdeHashes)
        json.key(name).value(hash);
    json.endObject();

    json.key("findings").beginArray();
    for (const Finding &finding : result.findings) {
        json.beginObject();
        json.key("rule").value(finding.rule);
        json.key("file").value(finding.file);
        json.key("line").value(
            static_cast<std::int64_t>(finding.line));
        json.key("message").value(finding.message);
        json.key("fixed").value(finding.fixed);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
}

void
writeTextReport(std::ostream &out, const Result &result)
{
    for (const Finding &finding : result.findings)
        out << finding.file << ":" << finding.line << ": ["
            << finding.rule << "] " << finding.message
            << (finding.fixed ? " (fixed)" : "") << "\n";
    int open = 0;
    for (const Finding &finding : result.findings)
        if (!finding.fixed)
            ++open;
    out << (open == 0 ? "ibp_lint: clean" : "ibp_lint: ")
        << (open == 0 ? std::string()
                      : std::to_string(open) + " finding(s)");
    out << " (" << result.scannedFiles.size() << " files, "
        << result.suppressed << " suppressed)\n";
}

} // namespace ibp::lint
