#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/json.hh"

#include "index.hh"
#include "lexer.hh"

namespace ibp::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// The lint context

class Linter
{
  public:
    explicit Linter(const Options &options) : options_(options) {}

    Result
    run()
    {
        collectFiles();
        index_.build(files_);
        for (SourceFile &file : files_) {
            ruleLayering(file);
            ruleIncludeOrder(file);
            ruleDeterminismTokens(file);
            ruleUnorderedIteration(file);
            ruleTableModulo(file);
        }
        parseFactory();
        ruleSerdeCoverage();
        ruleSerdeManifest();
        ruleProbeNames();
        ruleIncludeGraph();
        ruleHotPathAlloc();
        ruleLockDiscipline();
        ruleBudgetAccounting();
        ruleBudgetManifest();
        applyFixes();
        std::sort(result_.findings.begin(), result_.findings.end(),
                  [](const Finding &a, const Finding &b) {
                      return std::tie(a.file, a.line, a.rule) <
                             std::tie(b.file, b.line, b.rule);
                  });
        return std::move(result_);
    }

  private:
    bool
    ruleEnabled(const std::string &rule) const
    {
        return options_.onlyRules.empty() ||
               options_.onlyRules.count(rule) > 0;
    }

    /** Report a finding unless an allow() pragma on the same or the
     *  preceding line suppresses it. */
    void
    report(const SourceFile &file, const std::string &rule, int line,
           std::string message)
    {
        if (!ruleEnabled(rule))
            return;
        for (int at = line; at >= line - 1; --at) {
            auto it = file.lexed.allows.find(at);
            if (it != file.lexed.allows.end() &&
                (it->second.count(rule) || it->second.count("all"))) {
                ++result_.suppressed;
                return;
            }
        }
        result_.findings.push_back(
            Finding{rule, file.relPath, line, std::move(message)});
    }

    void
    collectFiles()
    {
        const fs::path root(options_.root);
        std::vector<std::string> rels;
        for (const char *top :
             {"src", "bench", "tools", "tests", "examples"}) {
            const fs::path dir = root / top;
            if (!fs::is_directory(dir))
                continue;
            for (auto it = fs::recursive_directory_iterator(dir);
                 it != fs::recursive_directory_iterator(); ++it) {
                const fs::path &path = it->path();
                const std::string rel =
                    fs::relative(path, root).generic_string();
                if (it->is_directory()) {
                    // Intentionally-broken lint fixtures and build
                    // trees are not part of the linted tree.
                    if (rel == "tests/lint_fixtures" ||
                        path.filename().string().rfind("build", 0) ==
                            0)
                        it.disable_recursion_pending();
                    continue;
                }
                const std::string ext = path.extension().string();
                if (ext == ".hh" || ext == ".cc")
                    rels.push_back(rel);
            }
        }
        std::sort(rels.begin(), rels.end());
        for (const std::string &rel : rels) {
            SourceFile file;
            file.relPath = rel;
            const std::size_t slash = rel.find('/');
            file.dir = rel.substr(0, slash);
            if (file.dir == "src") {
                const std::size_t next = rel.find('/', slash + 1);
                if (next != std::string::npos) {
                    file.layer =
                        rel.substr(slash + 1, next - slash - 1);
                    file.rank = layerRank(file.layer);
                }
            }
            std::ifstream in(root / rel, std::ios::binary);
            if (!in) {
                std::cerr << "ibp_lint: cannot read " << rel << "\n";
                continue;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            file.text = buffer.str();
            file.lines = splitLines(file.text);
            file.lexed = lexFile(file.text);
            result_.scannedFiles.push_back(rel);
            files_.push_back(std::move(file));
        }
    }

    // -----------------------------------------------------------------
    // Rule: layering

    void
    ruleLayering(const SourceFile &file)
    {
        for (const Include &include : file.lexed.includes) {
            if (include.angled)
                continue;
            const std::string segment = firstSegment(include.path);
            if (file.dir == "src") {
                if (isAppDir(segment)) {
                    report(file, "layering", include.line,
                           "src/ must not include \"" + include.path +
                               "\": " + segment +
                               "/ headers sit above the library "
                               "layers");
                    continue;
                }
                const int rank = layerRank(segment);
                if (rank == kRankUnknown)
                    continue; // relative or generated header
                if (rank > file.rank) {
                    std::string allowed;
                    for (int i = 0; i <= file.rank; ++i)
                        allowed += (i ? ", " : "") + kLayers[i];
                    report(file, "layering", include.line,
                           "back-edge include \"" + include.path +
                               "\": " + segment + " (layer " +
                               std::to_string(rank) +
                               ") is above " + file.layer +
                               " (layer " +
                               std::to_string(file.rank) +
                               "); allowed layers: " + allowed);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: include-order (fixable)

    struct IncludeRun
    {
        std::vector<std::size_t> members; ///< indices into includes
        int startLine = 0;
    };

    /** Sort key for one project include within a run. */
    static std::pair<int, std::string>
    orderKey(const SourceFile &file, const Include &include,
             bool isFirstInclude)
    {
        const std::string segment = firstSegment(include.path);
        if (segment.empty())
            return {kRankLocal, include.path};
        // The own header of a .cc stays first, matching the
        // include-what-you-use convention.
        if (isFirstInclude && file.relPath.size() >= 3 &&
            file.relPath.compare(file.relPath.size() - 3, 3, ".cc") ==
                0) {
            const std::string stem = fs::path(file.relPath)
                                         .stem()
                                         .string();
            if (fs::path(include.path).stem().string() == stem)
                return {kRankLocal - 1, include.path};
        }
        return {layerRank(segment), include.path};
    }

    void
    ruleIncludeOrder(SourceFile &file)
    {
        const std::vector<Include> &includes = file.lexed.includes;
        std::vector<IncludeRun> runs;
        IncludeRun current;
        int prevLine = -10;
        for (std::size_t i = 0; i < includes.size(); ++i) {
            const Include &include = includes[i];
            if (include.angled) {
                prevLine = -10;
                continue;
            }
            if (include.line != prevLine + 1) {
                if (current.members.size() > 1)
                    runs.push_back(current);
                current = IncludeRun{};
                current.startLine = include.line;
            }
            current.members.push_back(i);
            prevLine = include.line;
        }
        if (current.members.size() > 1)
            runs.push_back(current);

        for (const IncludeRun &run : runs) {
            std::vector<std::size_t> sorted = run.members;
            std::sort(sorted.begin(), sorted.end(),
                      [&](std::size_t a, std::size_t b) {
                          return orderKey(file, includes[a], a == 0) <
                                 orderKey(file, includes[b], b == 0);
                      });
            if (sorted == run.members)
                continue;
            std::string want;
            for (std::size_t idx : sorted)
                want += (want.empty() ? "\"" : ", \"") +
                        includes[idx].path + "\"";
            report(file, "include-order", run.startLine,
                   "project includes not in layer order; expected " +
                       want + " (ibp_lint --fix reorders them)");
            FixRun fix;
            fix.file = &file;
            for (std::size_t idx : run.members)
                fix.lines.push_back(includes[idx].line);
            for (std::size_t idx : sorted)
                fix.sortedLines.push_back(includes[idx].line);
            fixRuns_.push_back(std::move(fix));
        }
    }

    // -----------------------------------------------------------------
    // Rules: determinism-random, determinism-clock

    void
    ruleDeterminismTokens(const SourceFile &file)
    {
        // obs/cputime.hh is the one sanctioned clock shim; everything
        // else — including the rest of the obs layer (timelines,
        // trace events, phase timers) — must read time through
        // obs::wallSeconds()/threadCpuSeconds() so every clock read
        // funnels through a single auditable chokepoint.
        if (file.dir != "src" || file.relPath == "src/obs/cputime.hh")
            return;
        const bool in_obs = file.layer == "obs";
        static const std::set<std::string> banned_random = {
            "rand",    "srand",   "rand_r",        "drand48",
            "lrand48", "mrand48", "random_device",
        };
        const std::vector<Token> &tokens = file.lexed.tokens;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.kind != TokenKind::Identifier)
                continue;
            const bool called =
                i + 1 < tokens.size() && tokens[i + 1].text == "(";
            if (banned_random.count(token.text) &&
                (called || token.text == "random_device")) {
                report(file, "determinism-random", token.line,
                       "non-deterministic source `" + token.text +
                           "` (use util::Rng, which is seeded and "
                           "checkpointable)");
                continue;
            }
            if (token.text == "now" && called && i > 0 &&
                tokens[i - 1].text == "::" &&
                i + 2 < tokens.size() && tokens[i + 2].text == ")") {
                report(file, "determinism-clock", token.line,
                       in_obs
                           ? "raw ::now() clock read in obs/ outside "
                             "cputime.hh (route timeline/trace-event "
                             "timestamps through obs::wallSeconds())"
                           : "raw ::now() wall-clock read outside "
                             "obs/ (use obs::wallSeconds()/"
                             "obs::PhaseTimer so every clock read is "
                             "auditable)");
                continue;
            }
            if (token.text == "time" && called) {
                const bool qualified =
                    i > 0 && tokens[i - 1].text == "::";
                const bool argless_form =
                    i + 2 < tokens.size() &&
                    (tokens[i + 2].text == "0" ||
                     tokens[i + 2].text == "NULL" ||
                     tokens[i + 2].text == "nullptr");
                if (qualified || argless_form)
                    report(file, "determinism-clock", token.line,
                           "time() wall-clock read outside obs/");
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: determinism-unordered-iter

    void
    ruleUnorderedIteration(const SourceFile &file)
    {
        if (file.dir != "src")
            return;
        const std::vector<Token> &tokens = file.lexed.tokens;

        // Names declared directly as unordered containers (members or
        // locals).  Container-of-container declarations are skipped:
        // iterating the outer vector is deterministic.
        std::set<std::string> unordered;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.text != "unordered_map" &&
                token.text != "unordered_set" &&
                token.text != "unordered_multimap" &&
                token.text != "unordered_multiset")
                continue;
            std::size_t j = i + 1;
            if (j < tokens.size() && tokens[j].text == "<") {
                int angle = 0;
                for (; j < tokens.size(); ++j) {
                    if (tokens[j].text == "<")
                        ++angle;
                    else if (tokens[j].text == ">" && --angle == 0) {
                        ++j;
                        break;
                    } else if (tokens[j].text == ";" ||
                               tokens[j].text == "{")
                        break; // not a template argument list
                }
            }
            while (j < tokens.size() && (tokens[j].text == "*" ||
                                         tokens[j].text == "&" ||
                                         tokens[j].text == "const"))
                ++j;
            if (j < tokens.size() &&
                tokens[j].kind == TokenKind::Identifier)
                unordered.insert(tokens[j].text);
        }
        if (unordered.empty())
            return;

        // Range-for loops whose range expression names one of them.
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
            if (tokens[i].text != "for" || tokens[i + 1].text != "(")
                continue;
            const std::size_t close = matchingClose(tokens, i + 1);
            // Find the range-for ':' at paren depth 1 (skip "::").
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (tokens[j].text == "(")
                    ++depth;
                else if (tokens[j].text == ")")
                    --depth;
                else if (tokens[j].text == ";")
                    break; // classic for loop
                else if (tokens[j].text == ":" && depth == 1) {
                    colon = j;
                    break;
                }
            }
            if (colon == 0)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (tokens[j].kind == TokenKind::Identifier &&
                    unordered.count(tokens[j].text)) {
                    report(file, "determinism-unordered-iter",
                           tokens[j].line,
                           "iteration over unordered container `" +
                               tokens[j].text +
                               "`: traversal order is "
                               "implementation-defined and leaks "
                               "into metrics/reports/serde (sort "
                               "into a vector or use std::map / "
                               "util::FlatMap)");
                    break;
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: table-modulo

    void
    ruleTableModulo(const SourceFile &file)
    {
        if (file.layer != "core" && file.layer != "predictors")
            return;
        static const std::set<std::string> exempt_calls = {
            "fatal_if", "panic_if",      "fatal",
            "panic",    "static_assert", "assert",
            "ibp_table_check",
        };
        const std::vector<Token> &tokens = file.lexed.tokens;
        int depth = 0;
        std::vector<int> exempt_depths;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token &token = tokens[i];
            if (token.text == "(") {
                ++depth;
                if (i > 0 &&
                    tokens[i - 1].kind == TokenKind::Identifier &&
                    exempt_calls.count(tokens[i - 1].text))
                    exempt_depths.push_back(depth);
            } else if (token.text == ")") {
                if (!exempt_depths.empty() &&
                    exempt_depths.back() == depth)
                    exempt_depths.pop_back();
                --depth;
            } else if (token.text == "%" && exempt_depths.empty()) {
                report(file, "table-modulo", token.line,
                       "modulo indexing in the predictor layers: use "
                       "Table::reduce() or util::reduceIndex() "
                       "(masked on power-of-two geometries, PR 2)");
            }
        }
    }

    // -----------------------------------------------------------------
    // Class model + serde rules

    const SourceFile *
    findFile(const std::string &relPath) const
    {
        return index_.findFile(relPath);
    }

    /** True when @p name transitively derives from IndirectPredictor
     *  through classes visible in the tree. */
    bool
    derivesFromPredictor(const std::string &name,
                         std::set<std::string> &seen) const
    {
        if (!seen.insert(name).second)
            return false;
        auto it = index_.serdeClasses.find(name);
        if (it == index_.serdeClasses.end())
            return false;
        for (const std::string &base : it->second.bases) {
            if (base == "IndirectPredictor")
                return true;
            if (derivesFromPredictor(base, seen))
                return true;
        }
        return false;
    }

    /** True when @p name or a proper ancestor *below* the
     *  IndirectPredictor root declares @p method. */
    bool
    declaresThroughChain(const std::string &name,
                         const std::string &method,
                         std::set<std::string> &seen) const
    {
        if (name == "IndirectPredictor" || name == "Predictor")
            return false; // the root's no-op default does not count
        if (!seen.insert(name).second)
            return false;
        auto it = index_.serdeClasses.find(name);
        if (it == index_.serdeClasses.end())
            return false;
        if (it->second.methods.count(method))
            return true;
        for (const std::string &base : it->second.bases) {
            std::set<std::string> chain = seen;
            if (declaresThroughChain(base, method, chain))
                return true;
        }
        return false;
    }

    /** Parse sim/factory.cc: registered name -> implementing class. */
    void
    parseFactory()
    {
        const SourceFile *factory = findFile("src/sim/factory.cc");
        if (!factory)
            return;
        const std::vector<Token> &tokens = factory->lexed.tokens;
        // Find the makePredictor() definition body.
        std::size_t body_begin = 0, body_end = 0;
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
            if (tokens[i].text != "makePredictor" ||
                tokens[i + 1].text != "(")
                continue;
            const std::size_t params = matchingClose(tokens, i + 1);
            if (params + 1 < tokens.size() &&
                tokens[params + 1].text == "{") {
                body_begin = params + 2;
                body_end = matchingClose(tokens, params + 1);
                break;
            }
        }
        if (body_begin == 0)
            return;
        std::set<std::string> pending;
        for (std::size_t i = body_begin; i < body_end; ++i) {
            const Token &token = tokens[i];
            // "==" is two Punct tokens in this lexer.
            if (token.text == "=" && i + 2 < body_end &&
                tokens[i + 1].text == "=" &&
                tokens[i + 2].kind == TokenKind::String) {
                pending.insert(tokens[i + 2].text);
            } else if (token.text == "starts_with" &&
                       i + 2 < body_end &&
                       tokens[i + 1].text == "(" &&
                       tokens[i + 2].kind == TokenKind::String) {
                pending.insert(tokens[i + 2].text + "*");
            } else if (token.text == "make_unique" &&
                       i + 1 < body_end &&
                       tokens[i + 1].text == "<") {
                std::string cls;
                for (std::size_t j = i + 2;
                     j < body_end && tokens[j].text != ">"; ++j)
                    if (tokens[j].kind == TokenKind::Identifier)
                        cls = tokens[j].text;
                for (const std::string &name : pending)
                    result_.factoryPredictors[name] = cls;
                pending.clear();
            }
        }
    }

    void
    ruleSerdeCoverage()
    {
        // Every factory-registered class plus every class deriving
        // from IndirectPredictor must carry the full serde surface.
        std::set<std::string> required;
        for (const auto &[name, cls] : result_.factoryPredictors) {
            (void)name;
            if (!cls.empty())
                required.insert(cls);
        }
        for (const auto &[name, info] : index_.serdeClasses) {
            (void)info;
            std::set<std::string> seen;
            if (derivesFromPredictor(name, seen))
                required.insert(name);
        }
        for (const std::string &name : required) {
            auto it = index_.serdeClasses.find(name);
            if (it == index_.serdeClasses.end()) {
                // Registered in the factory but not found in src/.
                Finding finding;
                finding.rule = "serde-coverage";
                finding.file = "src/sim/factory.cc";
                finding.message =
                    "factory registers class `" + name +
                    "` but no definition was found under src/";
                if (ruleEnabled(finding.rule))
                    result_.findings.push_back(std::move(finding));
                continue;
            }
            const ClassInfo &info = it->second;
            const SourceFile *file = findFile(info.file);
            for (const char *method :
                 {"saveState", "loadState", "snapshotProbes"}) {
                std::set<std::string> seen;
                if (declaresThroughChain(name, method, seen))
                    continue;
                const std::string message =
                    "predictor class `" + name + "` does not declare " +
                    method +
                    "() (directly or via a base): checkpoints would "
                    "silently skip its state";
                if (file)
                    report(*file, "serde-coverage", info.line,
                           message);
            }
        }
    }

    void
    ruleSerdeManifest()
    {
        // Tracked set: every class that declares saveState() itself.
        std::map<std::string, const ClassInfo *> tracked;
        for (const auto &[key, info] : index_.serdeClasses)
            if (info.declaresSaveState)
                tracked.emplace(key, &info);
        for (const auto &[key, info] : tracked)
            result_.serdeHashes[key] = info->shapeHash;

        const fs::path manifest_path =
            fs::path(options_.root) / options_.manifestPath;

        if (options_.updateManifest) {
            fs::create_directories(manifest_path.parent_path());
            std::ofstream out(manifest_path);
            util::JsonWriter json(out);
            json.beginObject();
            json.key("comment").value(
                "Serialized-state shape manifest, generated by "
                "`ibp_lint --update-manifest`.  Each entry hashes the "
                "data-member declarations of a class that implements "
                "saveState(); the serde-manifest lint rule fails when "
                "a hash drifts, forcing a conscious review of "
                "checkpoint compatibility (and a format-version bump "
                "where needed) before regenerating.");
            json.key("format").value(1);
            json.key("classes").beginObject();
            for (const auto &[key, info] : tracked)
                json.key(key).value(info->shapeHash);
            json.endObject();
            json.endObject();
            out << "\n";
            result_.manifestUpdated = true;
            return;
        }

        if (!fs::exists(manifest_path)) {
            if (tracked.empty())
                return; // nothing checkpointed, nothing to pin
            Finding finding;
            finding.rule = "serde-manifest";
            finding.file = options_.manifestPath;
            finding.message =
                "serde manifest missing; generate it with "
                "`ibp_lint --update-manifest`";
            if (ruleEnabled(finding.rule))
                result_.findings.push_back(std::move(finding));
            return;
        }
        std::ifstream in(manifest_path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const util::JsonValue doc = util::parseJson(buffer.str());
        const util::JsonValue *recorded = doc.find("classes");
        std::map<std::string, std::string> old_hashes;
        if (recorded)
            for (const auto &[key, value] : recorded->asObject())
                old_hashes[key] = value.asString();

        for (const auto &[key, info] : tracked) {
            const SourceFile *file = findFile(info->file);
            auto it = old_hashes.find(key);
            if (it == old_hashes.end()) {
                if (file)
                    report(*file, "serde-manifest", info->line,
                           "class `" + key +
                               "` implements saveState() but has no "
                               "serde manifest entry; review its "
                               "checkpoint format, then run "
                               "`ibp_lint --update-manifest`");
                continue;
            }
            if (it->second != info->shapeHash && file)
                report(*file, "serde-manifest", info->line,
                       "serialized-state shape of `" + key +
                           "` changed (manifest " + it->second +
                           ", tree " + info->shapeHash +
                           "): audit saveState()/loadState() and "
                           "bump the relevant format version, then "
                           "run `ibp_lint --update-manifest`");
        }
        for (const auto &[key, hash] : old_hashes) {
            (void)hash;
            if (!tracked.count(key)) {
                Finding finding;
                finding.rule = "serde-manifest";
                finding.file = options_.manifestPath;
                finding.message =
                    "manifest entry `" + key +
                    "` has no matching class in src/; run "
                    "`ibp_lint --update-manifest`";
                if (ruleEnabled(finding.rule))
                    result_.findings.push_back(std::move(finding));
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: probe-name

    static bool
    validProbeName(const std::string &name)
    {
        if (name.empty() || name.front() == '/' || name.back() == '/')
            return false;
        bool segment_empty = true;
        for (const char c : name) {
            if (c == '/') {
                if (segment_empty)
                    return false;
                segment_empty = true;
            } else if ((c >= 'a' && c <= 'z') ||
                       (c >= '0' && c <= '9') || c == '_') {
                segment_empty = false;
            } else {
                return false;
            }
        }
        return !segment_empty;
    }

    void
    ruleProbeNames()
    {
        for (const SourceFile &file : files_) {
            if (file.dir != "src")
                continue;
            const std::vector<Token> &tokens = file.lexed.tokens;
            for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
                if (tokens[i].text != "snapshotProbes" ||
                    tokens[i + 1].text != "(")
                    continue;
                std::size_t j = matchingClose(tokens, i + 1) + 1;
                while (j < tokens.size() &&
                       (tokens[j].text == "const" ||
                        tokens[j].text == "override" ||
                        tokens[j].text == "final" ||
                        tokens[j].text == "noexcept"))
                    ++j;
                if (j >= tokens.size() || tokens[j].text != "{")
                    continue; // declaration only
                const std::size_t body_end = matchingClose(tokens, j);
                for (std::size_t k = j; k + 3 < body_end; ++k) {
                    if (tokens[k].text != "." ||
                        (tokens[k + 1].text != "counter" &&
                         tokens[k + 1].text != "histogram") ||
                        tokens[k + 2].text != "(" ||
                        tokens[k + 3].kind != TokenKind::String)
                        continue;
                    const std::string &name = tokens[k + 3].text;
                    if (!validProbeName(name))
                        report(file, "probe-name", tokens[k + 3].line,
                               "probe name \"" + name +
                                   "\" violates the convention "
                                   "[a-z0-9_]+(/[a-z0-9_]+)*");
                }
                i = body_end;
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: include-graph (missing own header, include cycles)

    void
    ruleIncludeGraph()
    {
        // A .cc with a same-stem sibling header must include it (the
        // include-what-you-use own-header convention the
        // include-order rule already sorts first).
        for (const SourceFile &file : files_) {
            if (file.relPath.size() < 3 ||
                file.relPath.compare(file.relPath.size() - 3, 3,
                                     ".cc") != 0)
                continue;
            const std::string own =
                file.relPath.substr(0, file.relPath.size() - 3) +
                ".hh";
            if (!index_.findFile(own))
                continue;
            bool included = false;
            auto edges = index_.includeEdges.find(file.relPath);
            if (edges != index_.includeEdges.end())
                for (const auto &[target, line] : edges->second) {
                    (void)line;
                    if (target == own)
                        included = true;
                }
            if (!included)
                report(file, "include-graph", 1,
                       "missing own header: \"" +
                           own.substr(own.rfind('/') + 1) +
                           "\" exists next to this .cc but is not "
                           "included (include it first so its "
                           "self-containedness is compiler-checked)");
        }

        // Cycle detection over the resolved quoted-include graph.
        std::map<std::string, int> color; // 0 white, 1 gray, 2 black
        std::vector<std::string> stack;
        std::set<std::string> reported;
        const auto dfs = [&](const std::string &node,
                             const auto &self) -> void {
            color[node] = 1;
            stack.push_back(node);
            auto edges = index_.includeEdges.find(node);
            if (edges != index_.includeEdges.end())
                for (const auto &[next, line] : edges->second) {
                    if (color[next] == 1) {
                        auto at = std::find(stack.begin(),
                                            stack.end(), next);
                        std::vector<std::string> cycle(at,
                                                       stack.end());
                        // Canonical key: rotate the smallest member
                        // to the front so each cycle reports once.
                        auto min = std::min_element(cycle.begin(),
                                                    cycle.end());
                        std::rotate(cycle.begin(), min, cycle.end());
                        std::string key;
                        for (const std::string &f : cycle)
                            key += f + ";";
                        if (!reported.insert(key).second)
                            continue;
                        std::string path;
                        for (const std::string &f : cycle)
                            path += f + " -> ";
                        path += cycle.front();
                        const SourceFile *file =
                            index_.findFile(node);
                        if (file)
                            report(*file, "include-graph", line,
                                   "include cycle: " + path +
                                       " (break it with a forward "
                                       "declaration or by moving "
                                       "the shared type down a "
                                       "layer)");
                    } else if (color[next] == 0) {
                        self(next, self);
                    }
                }
            stack.pop_back();
            color[node] = 2;
        };
        for (const SourceFile &file : files_)
            if (color[file.relPath] == 0)
                dfs(file.relPath, dfs);
    }

    // -----------------------------------------------------------------
    // Rule: hot-path-alloc

    void
    ruleHotPathAlloc()
    {
        static const std::set<std::string> hot_methods = {
            "predict", "update", "predictAndUpdate", "train",
        };
        static const std::set<std::string> banned_calls = {
            "malloc",       "calloc", "realloc",
            "push_back",    "emplace_back", "push_front",
            "emplace_front", "resize", "reserve",
            "to_string",
        };
        static const std::set<std::string> string_types = {
            "string", "ostringstream", "stringstream",
        };
        for (const auto &[key, cls] : index_.classes) {
            (void)key;
            for (const std::string &method : hot_methods) {
                auto bodies = cls.bodies.find(method);
                if (bodies == cls.bodies.end())
                    continue;
                for (const MethodBody &body : bodies->second) {
                    const SourceFile &file = *body.file;
                    if (file.layer != "predictors" &&
                        file.layer != "core")
                        continue;
                    const std::vector<Token> &tokens =
                        file.lexed.tokens;
                    for (std::size_t i = body.bodyBegin;
                         i < body.bodyEnd; ++i) {
                        const Token &t = tokens[i];
                        if (t.kind != TokenKind::Identifier)
                            continue;
                        const bool called =
                            i + 1 < body.bodyEnd &&
                            tokens[i + 1].text == "(";
                        std::string what;
                        if (t.text == "new")
                            what = "`new` allocation";
                        else if (t.text == "throw")
                            what = "`throw` (unwinding)";
                        else if (banned_calls.count(t.text) && called)
                            what = "`" + t.text + "()` (allocates)";
                        else if (string_types.count(t.text))
                            what = "std::" + t.text + " construction";
                        if (what.empty())
                            continue;
                        report(file, "hot-path-alloc", t.line,
                               what + " inside " + cls.name +
                                   "::" + method +
                                   "(), a per-branch hot path: "
                                   "preallocate in the constructor "
                                   "or move the slow path behind "
                                   "`// ibp-lint: allow("
                                   "hot-path-alloc)` with a comment "
                                   "saying why it is cold");
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: lock-discipline

    /** Mutexes locked in [begin, end): names appearing inside the
     *  parens of a lock_guard/unique_lock/scoped_lock construction. */
    static std::set<std::string>
    lockedMutexes(const std::vector<Token> &tokens, std::size_t begin,
                  std::size_t end)
    {
        static const std::set<std::string> lock_types = {
            "lock_guard", "unique_lock", "scoped_lock",
        };
        std::set<std::string> locked;
        for (std::size_t i = begin; i < end; ++i) {
            if (!lock_types.count(tokens[i].text))
                continue;
            // Skip the template argument list and the variable name:
            // the next '(' or '{' opens the constructor arguments.
            std::size_t j = i + 1;
            while (j < end && tokens[j].text != "(" &&
                   tokens[j].text != "{" && tokens[j].text != ";")
                ++j;
            if (j >= end || tokens[j].text == ";")
                continue;
            const std::size_t close =
                std::min(matchingClose(tokens, j), end);
            for (std::size_t k = j + 1; k < close; ++k)
                if (tokens[k].kind == TokenKind::Identifier)
                    locked.insert(tokens[k].text);
            i = close;
        }
        return locked;
    }

    void
    ruleLockDiscipline()
    {
        for (const auto &[key, cls] : index_.classes) {
            (void)key;
            std::map<std::string, std::string> guarded;
            for (const Member &member : cls.members)
                if (!member.guardedBy.empty())
                    guarded[member.name] = member.guardedBy;
            if (guarded.empty())
                continue;
            for (const auto &[method, bodies] : cls.bodies) {
                // Constructors and destructors run before/after any
                // sharing, matching clang thread-safety semantics.
                if (method == cls.name ||
                    method == "~" + cls.name)
                    continue;
                for (const MethodBody &body : bodies) {
                    const std::vector<Token> &tokens =
                        body.file->lexed.tokens;
                    const std::set<std::string> locked =
                        lockedMutexes(tokens, body.bodyBegin,
                                      body.bodyEnd);
                    std::set<std::string> flagged;
                    for (std::size_t i = body.bodyBegin;
                         i < body.bodyEnd; ++i) {
                        const Token &t = tokens[i];
                        if (t.kind != TokenKind::Identifier)
                            continue;
                        auto it = guarded.find(t.text);
                        if (it == guarded.end())
                            continue;
                        const std::string &mutex = it->second;
                        if (locked.count(mutex) ||
                            body.requiresLock == mutex)
                            continue;
                        if (!flagged.insert(t.text).second)
                            continue; // one finding per member/body
                        report(*body.file, "lock-discipline", t.line,
                               "member `" + t.text +
                                   "` is guarded by `" + mutex +
                                   "` but " + cls.name + "::" +
                                   method +
                                   "() touches it without "
                                   "constructing a lock_guard/"
                                   "unique_lock/scoped_lock on it "
                                   "(or annotate the method "
                                   "`// ibp-lint: requires_lock(" +
                                   mutex + ")` if every caller "
                                   "already holds it)");
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Rule: budget-accounting

    static bool
    tableLike(const Member &member)
    {
        static const std::set<std::string> markers = {
            "DirectTable",   "AssocTable",    "FlatMap",
            "ShiftHistory",  "SymbolHistory", "FoldedHistory",
            "SfsxsWord",     "TargetEntry",   "array",
        };
        for (const std::string &t : member.typeTokens)
            if (markers.count(t))
                return true;
        return false;
    }

    /** Unique factory-registered classes that exist in the index. */
    std::map<std::string, const IndexedClass *>
    factoryClasses() const
    {
        std::map<std::string, const IndexedClass *> out;
        for (const auto &[name, clsName] :
             result_.factoryPredictors) {
            (void)name;
            const IndexedClass *cls = index_.findClass(clsName);
            if (cls)
                out.emplace(clsName, cls);
        }
        return out;
    }

    /** Every identifier reachable from @p cls's storageBits() bodies,
     *  following calls into same-class helper methods. */
    std::set<std::string>
    storageBitsClosure(const IndexedClass &cls, bool &hasBody) const
    {
        std::set<std::string> referenced;
        std::set<std::string> visited;
        std::vector<std::string> queue = {"storageBits"};
        hasBody = false;
        while (!queue.empty()) {
            const std::string method = queue.back();
            queue.pop_back();
            if (!visited.insert(method).second)
                continue;
            auto bodies = cls.bodies.find(method);
            if (bodies == cls.bodies.end())
                continue;
            for (const MethodBody &body : bodies->second) {
                hasBody = true;
                const std::vector<Token> &tokens =
                    body.file->lexed.tokens;
                for (std::size_t i = body.bodyBegin;
                     i < body.bodyEnd; ++i) {
                    if (tokens[i].kind != TokenKind::Identifier)
                        continue;
                    referenced.insert(tokens[i].text);
                    if (cls.methodNames.count(tokens[i].text))
                        queue.push_back(tokens[i].text);
                }
            }
        }
        return referenced;
    }

    void
    ruleBudgetAccounting()
    {
        for (const auto &[clsName, cls] : factoryClasses()) {
            const SourceFile *file = index_.findFile(cls->file);
            if (!file)
                continue;
            std::set<std::string> seen;
            if (!declaresThroughChain(clsName, "storageBits", seen)) {
                report(*file, "budget-accounting", cls->line,
                       "factory predictor `" + clsName +
                           "` does not override storageBits(): "
                           "every lineup member must report its "
                           "hardware cost so the fixed-budget "
                           "comparison stays honest");
                continue;
            }
            bool hasBody = false;
            const std::set<std::string> referenced =
                storageBitsClosure(*cls, hasBody);
            if (!hasBody)
                continue; // declaration-only trees (fixtures)
            for (const Member &member : cls->members) {
                if (!tableLike(member))
                    continue;
                if (referenced.count(member.name))
                    continue;
                report(*file, "budget-accounting", member.line,
                       "table-like member `" + member.name +
                           "` of `" + clsName +
                           "` is not referenced in storageBits(): "
                           "its entries are invisible to the "
                           "hardware-budget audit (count it from "
                           "the member itself, e.g. " + member.name +
                           ".size() * entry_bits)");
            }
        }
    }

    void
    ruleBudgetManifest()
    {
        std::map<std::string, std::pair<std::string, std::string>>
            current; // factory name -> (class, shape)
        for (const auto &[name, clsName] :
             result_.factoryPredictors) {
            const IndexedClass *cls = index_.findClass(clsName);
            if (!cls)
                continue;
            current[name] = {clsName, index_.budgetShapeHash(*cls)};
            result_.budgetHashes[name] = current[name].second;
        }

        const fs::path manifest_path =
            fs::path(options_.root) / options_.budgetManifestPath;

        if (options_.updateManifest) {
            if (current.empty() && !fs::exists(manifest_path))
                return; // no factory, nothing to pin
            // Preserve recorded storage_bits: the static pass knows
            // shapes, tools/budget_tool --update knows totals.
            std::map<std::string, std::uint64_t> bits;
            if (fs::exists(manifest_path)) {
                std::ifstream in(manifest_path);
                std::ostringstream buffer;
                buffer << in.rdbuf();
                const util::JsonValue doc =
                    util::parseJson(buffer.str());
                if (const util::JsonValue *old =
                        doc.find("predictors"))
                    for (const auto &[name, entry] :
                         old->asObject())
                        if (const util::JsonValue *b =
                                entry.find("storage_bits"))
                            bits[name] = b->asUint();
            }
            fs::create_directories(manifest_path.parent_path());
            std::ofstream out(manifest_path);
            util::JsonWriter json(out);
            json.beginObject();
            json.key("comment").value(
                "Hardware-budget geometry manifest, generated by "
                "`ibp_lint --update-manifest`.  Each factory name "
                "pins its implementing class, an FNV-1a shape hash "
                "of the class's (member -> extent-expression) map "
                "(recursed through composed classes), and the "
                "runtime storageBits() total recorded by "
                "`budget_tool --update`.  The budget-accounting "
                "lint rule fails on shape drift; CI cross-checks "
                "storage_bits against the live build.");
            json.key("format").value(1);
            json.key("predictors").beginObject();
            for (const auto &[name, entry] : current) {
                json.key(name).beginObject();
                json.key("class").value(entry.first);
                json.key("shape").value(entry.second);
                auto it = bits.find(name);
                json.key("storage_bits")
                    .value(it == bits.end() ? std::uint64_t{0}
                                            : it->second);
                json.endObject();
            }
            json.endObject();
            json.endObject();
            out << "\n";
            result_.manifestUpdated = true;
            return;
        }

        if (!fs::exists(manifest_path)) {
            if (current.empty())
                return;
            Finding finding;
            finding.rule = "budget-accounting";
            finding.file = options_.budgetManifestPath;
            finding.message =
                "budget manifest missing; generate it with "
                "`ibp_lint --update-manifest` (then record runtime "
                "totals with `budget_tool --update`)";
            if (ruleEnabled(finding.rule))
                result_.findings.push_back(std::move(finding));
            return;
        }
        std::ifstream in(manifest_path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const util::JsonValue doc = util::parseJson(buffer.str());
        const util::JsonValue *recorded = doc.find("predictors");
        std::map<std::string, std::pair<std::string, std::string>>
            old_entries;
        if (recorded)
            for (const auto &[name, entry] : recorded->asObject()) {
                const util::JsonValue *cls = entry.find("class");
                const util::JsonValue *shape = entry.find("shape");
                old_entries[name] = {cls ? cls->asString() : "",
                                     shape ? shape->asString() : ""};
            }

        for (const auto &[name, entry] : current) {
            const IndexedClass *cls =
                index_.findClass(entry.first);
            const SourceFile *file =
                cls ? index_.findFile(cls->file) : nullptr;
            auto it = old_entries.find(name);
            if (it == old_entries.end()) {
                if (file)
                    report(*file, "budget-accounting", cls->line,
                           "factory name `" + name +
                               "` (class `" + entry.first +
                               "`) has no budget manifest entry; "
                               "audit its storageBits() against the "
                               "2K-entry envelope, then run "
                               "`ibp_lint --update-manifest` and "
                               "`budget_tool --update`");
                continue;
            }
            if (it->second.second != entry.second && file)
                report(*file, "budget-accounting", cls->line,
                       "table geometry shape of `" + entry.first +
                           "` (registered as " + name +
                           ") changed (manifest " +
                           it->second.second + ", tree " +
                           entry.second +
                           "): re-audit storageBits() against the "
                           "fixed hardware budget, then run "
                           "`ibp_lint --update-manifest` and "
                           "`budget_tool --update`");
        }
        for (const auto &[name, entry] : old_entries) {
            (void)entry;
            if (!current.count(name)) {
                Finding finding;
                finding.rule = "budget-accounting";
                finding.file = options_.budgetManifestPath;
                finding.message =
                    "budget manifest entry `" + name +
                    "` is no longer registered in the factory; run "
                    "`ibp_lint --update-manifest`";
                if (ruleEnabled(finding.rule))
                    result_.findings.push_back(std::move(finding));
            }
        }
    }

    // -----------------------------------------------------------------
    // --fix engine (include reordering)

    struct FixRun
    {
        SourceFile *file = nullptr;
        std::vector<int> lines;       ///< original 1-based line slots
        std::vector<int> sortedLines; ///< source line for each slot
    };

    void
    applyFixes()
    {
        if (!options_.fix && !options_.fixDryRun)
            return;
        std::map<SourceFile *, std::vector<FixRun *>> by_file;
        for (FixRun &run : fixRuns_)
            by_file[run.file].push_back(&run);

        std::ostringstream diff;
        for (auto &[file, runs] : by_file) {
            std::vector<std::string> lines = file->lines;
            diff << "--- a/" << file->relPath << "\n"
                 << "+++ b/" << file->relPath << "\n";
            for (const FixRun *run : runs) {
                diff << "@@ -" << run->lines.front() << ","
                     << run->lines.size() << " +"
                     << run->lines.front() << ","
                     << run->lines.size() << " @@\n";
                for (int line : run->lines)
                    diff << "-" << file->lines[line - 1] << "\n";
                for (int line : run->sortedLines)
                    diff << "+" << file->lines[line - 1] << "\n";
                for (std::size_t i = 0; i < run->lines.size(); ++i)
                    lines[run->lines[i] - 1] =
                        file->lines[run->sortedLines[i] - 1];
            }
            if (options_.fix) {
                std::ofstream out(fs::path(options_.root) /
                                  file->relPath);
                for (const std::string &line : lines)
                    out << line << "\n";
                for (Finding &finding : result_.findings)
                    if (finding.rule == "include-order" &&
                        finding.file == file->relPath)
                        finding.fixed = true;
            }
        }
        result_.fixDiff = diff.str();
    }

    Options options_;
    Result result_;
    std::vector<SourceFile> files_;
    SemanticIndex index_;
    std::vector<FixRun> fixRuns_;
};

} // namespace

Result
runLint(const Options &options)
{
    return Linter(options).run();
}

int
exitCodeFor(const Result &result)
{
    for (const Finding &finding : result.findings)
        if (!finding.fixed)
            return 1;
    return 0;
}

void
writeJsonReport(std::ostream &out, const Options &options,
                const Result &result)
{
    util::JsonWriter json(out);
    json.beginObject();
    json.key("schema").value("ibp-lint-v1");
    json.key("root").value(options.root);
    json.key("clean").value(exitCodeFor(result) == 0);
    json.key("files_scanned")
        .value(static_cast<std::uint64_t>(result.scannedFiles.size()));
    json.key("suppressed")
        .value(static_cast<std::int64_t>(result.suppressed));

    std::map<std::string, std::uint64_t> counts;
    for (const Finding &finding : result.findings)
        ++counts[finding.rule];
    json.key("counts").beginObject();
    for (const auto &[rule, count] : counts)
        json.key(rule).value(count);
    json.endObject();

    json.key("factory_predictors").beginObject();
    for (const auto &[name, cls] : result.factoryPredictors)
        json.key(name).value(cls);
    json.endObject();

    json.key("serde_classes").beginObject();
    for (const auto &[name, hash] : result.serdeHashes)
        json.key(name).value(hash);
    json.endObject();

    json.key("budget_predictors").beginObject();
    for (const auto &[name, hash] : result.budgetHashes)
        json.key(name).value(hash);
    json.endObject();

    json.key("findings").beginArray();
    for (const Finding &finding : result.findings) {
        json.beginObject();
        json.key("rule").value(finding.rule);
        json.key("file").value(finding.file);
        json.key("line").value(
            static_cast<std::int64_t>(finding.line));
        json.key("message").value(finding.message);
        json.key("fixed").value(finding.fixed);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
}

void
writeTextReport(std::ostream &out, const Result &result)
{
    for (const Finding &finding : result.findings)
        out << finding.file << ":" << finding.line << ": ["
            << finding.rule << "] " << finding.message
            << (finding.fixed ? " (fixed)" : "") << "\n";
    int open = 0;
    for (const Finding &finding : result.findings)
        if (!finding.fixed)
            ++open;
    out << (open == 0 ? "ibp_lint: clean" : "ibp_lint: ")
        << (open == 0 ? std::string()
                      : std::to_string(open) + " finding(s)");
    out << " (" << result.scannedFiles.size() << " files, "
        << result.suppressed << " suppressed)\n";
}

} // namespace ibp::lint
