#include "lexer.hh"

#include <cctype>

namespace ibp::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Split the parenthesized argument list that starts at @p i (just
 *  past the '(') into comma/space-separated words. */
std::vector<std::string>
pragmaArgs(const std::string &comment, std::size_t i)
{
    std::vector<std::string> args;
    std::string word;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
        const char c = comment[i];
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!word.empty())
                args.push_back(word);
            word.clear();
        } else {
            word += c;
        }
    }
    if (!word.empty())
        args.push_back(word);
    return args;
}

/** Record the `ibp-lint:` pragma family — allow(rule-a, rule-b),
 *  guarded_by(mutex), requires_lock(mutex) — found in a comment whose
 *  text starts at @p line. */
void
recordPragmas(LexedFile &out, const std::string &comment, int line)
{
    const std::string marker = "ibp-lint:";
    std::size_t at = comment.find(marker);
    while (at != std::string::npos) {
        std::size_t i = at + marker.size();
        while (i < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[i])))
            ++i;
        std::string verb;
        while (i < comment.size() &&
               (isIdentBody(comment[i]) || comment[i] == '-'))
            verb += comment[i++];
        while (i < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[i])))
            ++i;
        if (i < comment.size() && comment[i] == '(') {
            const std::vector<std::string> args =
                pragmaArgs(comment, i + 1);
            if (verb == "allow") {
                for (const std::string &rule : args)
                    out.allows[line].insert(rule);
            } else if (verb == "guarded_by" && !args.empty()) {
                out.guards[line] = args.front();
            } else if (verb == "requires_lock" && !args.empty()) {
                out.requiresLock[line] = args.front();
            }
        }
        at = comment.find(marker, at + marker.size());
    }
}

} // namespace

LexedFile
lexFile(const std::string &text)
{
    LexedFile out;
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    bool bol = true; // at beginning of line (modulo whitespace)

    const auto peek = [&](std::size_t k) {
        return i + k < n ? text[i + k] : '\0';
    };
    const auto push = [&](TokenKind kind, std::string tok) {
        out.tokens.push_back(Token{kind, std::move(tok), line});
        bol = false;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            bol = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }
        if (c == '\\' && peek(1) == '\n') { // line continuation
            ++line;
            i += 2;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            const std::size_t start = i + 2;
            while (i < n && text[i] != '\n')
                ++i;
            recordPragmas(out, text.substr(start, i - start), line);
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const int start_line = line;
            const std::size_t start = i + 2;
            i += 2;
            while (i < n && !(text[i] == '*' && peek(1) == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            recordPragmas(out, text.substr(start, i - start),
                          start_line);
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        if (c == '#' && bol) {
            // Preprocessor directive.  #include is recorded and
            // swallowed; every other directive is tokenized normally
            // so rules still see macro bodies.
            std::size_t j = i + 1;
            while (j < n && (text[j] == ' ' || text[j] == '\t'))
                ++j;
            std::size_t w = j;
            while (w < n && isIdentBody(text[w]))
                ++w;
            if (text.compare(j, w - j, "include") == 0) {
                std::size_t k = w;
                while (k < n && (text[k] == ' ' || text[k] == '\t'))
                    ++k;
                if (k < n && (text[k] == '"' || text[k] == '<')) {
                    const char close = text[k] == '"' ? '"' : '>';
                    const std::size_t path_start = k + 1;
                    std::size_t path_end = path_start;
                    while (path_end < n && text[path_end] != close &&
                           text[path_end] != '\n')
                        ++path_end;
                    out.includes.push_back(
                        Include{text.substr(path_start,
                                            path_end - path_start),
                                close == '>', line});
                }
                while (i < n && text[i] != '\n')
                    ++i;
                continue;
            }
            push(TokenKind::Punct, "#");
            ++i;
            continue;
        }
        if (c == '"') {
            std::string value;
            ++i;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < n) {
                    value += text[i];
                    value += text[i + 1];
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    ++line; // unterminated; keep scanning safely
                value += text[i];
                ++i;
            }
            if (i < n)
                ++i;
            push(TokenKind::String, value);
            continue;
        }
        if (c == '\'') {
            std::string value;
            ++i;
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\' && i + 1 < n) {
                    value += text[i];
                    value += text[i + 1];
                    i += 2;
                    continue;
                }
                value += text[i];
                ++i;
            }
            if (i < n)
                ++i;
            push(TokenKind::CharLit, value);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n &&
                   (isIdentBody(text[j]) || text[j] == '.' ||
                    text[j] == '\'' ||
                    ((text[j] == '+' || text[j] == '-') && j > i &&
                     (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                      text[j - 1] == 'p' || text[j - 1] == 'P'))))
                ++j;
            push(TokenKind::Number, text.substr(i, j - i));
            i = j;
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentBody(text[j]))
                ++j;
            push(TokenKind::Identifier, text.substr(i, j - i));
            i = j;
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            push(TokenKind::Punct, "::");
            i += 2;
            continue;
        }
        push(TokenKind::Punct, std::string(1, c));
        ++i;
    }
    out.lineCount = line;
    return out;
}

} // namespace ibp::lint
