/**
 * @file
 * The ibp_lint semantic index: a shared preprocessor-lite pass over
 * the lexed tree that every structural rule builds on.
 *
 * The index is three layers deep:
 *
 *  1. **Files** — `SourceFile` couples a path, its layer rank in the
 *     include DAG, and the token stream from lexer.cc.
 *  2. **Include graph** — quoted includes resolved against the
 *     scanned tree (includer-relative, then src/-relative, then
 *     root-relative), giving the include-graph rule its edges for
 *     missing-own-header and cycle detection.
 *  3. **Classes** — for every class/struct: the data members with
 *     their declared type tokens and extent/initializer tokens, the
 *     constructor member-init extents, and every method body as a
 *     token range — including out-of-line `Class::method` definitions
 *     found anywhere in the tree.  `guarded_by`/`requires_lock`
 *     pragmas from the lexer are attached to the member or body they
 *     annotate.
 *
 * The serde-era `ClassInfo`/`shapeHash` model is kept verbatim (the
 * serde manifest hashes must stay byte-stable across this refactor);
 * the richer `IndexedClass` model feeds the budget-accounting,
 * hot-path-alloc and lock-discipline rules.
 */

#ifndef IBP_TOOLS_IBP_LINT_INDEX_HH_
#define IBP_TOOLS_IBP_LINT_INDEX_HH_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace ibp::lint {

/** The enforced include DAG, lowest layer first.  A file in layer L
 *  may include headers from layers with rank <= rank(L) only. */
extern const std::vector<std::string> kLayers;

constexpr int kRankLocal = -1;   ///< "bench_util.hh"-style local header
constexpr int kRankUnknown = 50; ///< quoted path outside the DAG
constexpr int kRankApp = 100;    ///< bench/tools/tests/examples

int layerRank(const std::string &layer);

/** First path segment of an include path ("util/json.hh" -> "util"). */
std::string firstSegment(const std::string &path);

bool isAppDir(const std::string &dir);

/** One scanned source file. */
struct SourceFile
{
    std::string relPath;
    std::string dir;     ///< "src", "bench", "tools", ...
    std::string layer;   ///< src layer name, empty for app tier
    int rank = kRankApp; ///< layer rank, kRankApp for app tier
    std::string text;
    std::vector<std::string> lines;
    LexedFile lexed;
};

std::vector<std::string> splitLines(const std::string &text);

/** Hex FNV-1a over a token sequence (0x1f separators). */
std::string fnv1a(const std::vector<std::string> &tokens);

/** Index of the token matching the brace/paren opened at @p open
 *  (tokens[open] must be "{" or "("); tokens.size() if unbalanced. */
std::size_t matchingClose(const std::vector<Token> &tokens,
                          std::size_t open);

bool isAccessSpecifier(const std::string &text);

// ---------------------------------------------------------------------
// Serde-era class model (hash format pinned by serde_manifest.json)

struct ClassInfo
{
    std::string name;
    std::string file;
    int line = 0;
    std::vector<std::string> bases;
    std::set<std::string> methods; ///< identifiers called/declared with
                                   ///< '(' at class-body depth 1
    bool declaresSaveState = false;
    std::string shapeHash; ///< hex FNV-1a of the data-member tokens
};

/** Hash the serialized-shape-relevant declarations of a class body
 *  (see lint.cc's serde-manifest rule; format is pinned). */
std::string shapeHash(const std::vector<Token> &tokens,
                      std::size_t bodyBegin, std::size_t bodyEnd);

/** Extract every class/struct definition from one lexed file. */
std::vector<ClassInfo> extractClasses(const SourceFile &file);

// ---------------------------------------------------------------------
// Semantic index

/** One data member of an indexed class. */
struct Member
{
    std::string name;
    int line = 0;
    std::vector<std::string> typeTokens; ///< declaration before the name
    std::vector<std::string> initTokens; ///< array extent / initializer
    std::string guardedBy; ///< mutex from a guarded_by() pragma
};

/** One method body (in-class or out-of-line) as a token range. */
struct MethodBody
{
    const SourceFile *file = nullptr;
    std::size_t bodyBegin = 0; ///< first token inside the '{'
    std::size_t bodyEnd = 0;   ///< index of the matching '}'
    int line = 0;              ///< line of the method name
    bool outOfLine = false;
    std::string requiresLock; ///< mutex from a requires_lock() pragma
};

struct IndexedClass
{
    std::string name;
    std::string file; ///< file of the definition
    int line = 0;
    std::vector<std::string> bases;
    std::vector<Member> members;           ///< declaration order
    std::set<std::string> methodNames;     ///< declared or defined
    std::map<std::string, std::vector<MethodBody>> bodies;
    /** member -> constructor init-list extent tokens (all ctors). */
    std::map<std::string, std::vector<std::string>> ctorInits;
};

struct SemanticIndex
{
    /** Class name -> definition.  A duplicate name is additionally
     *  keyed as "Name@file" (first definition wins the plain key). */
    std::map<std::string, IndexedClass> classes;
    /** Serde-era model, same keying scheme. */
    std::map<std::string, ClassInfo> serdeClasses;
    /** file relPath -> resolved project-relative include targets
     *  (quoted includes that name another scanned file). */
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        includeEdges;

    const SourceFile *findFile(const std::string &relPath) const;

    /** Look up the primary definition of @p name (nullptr if none). */
    const IndexedClass *findClass(const std::string &name) const;

    /**
     * FNV-1a shape hash of a class's (member -> extent-expression)
     * map: member names, declared types, declaration initializers and
     * constructor-init extents, recursed through member types that
     * are themselves classes in the index (cycle-safe).  Pinned in
     * tools/lint/budget_manifest.json by the budget-accounting rule.
     */
    std::string budgetShapeHash(const IndexedClass &cls) const;

    /** Build the full index over @p files (pointers into the vector
     *  are retained; the caller keeps it alive). */
    void build(const std::vector<SourceFile> &files);

  private:
    std::map<std::string, const SourceFile *> filesByPath_;
};

} // namespace ibp::lint

#endif // IBP_TOOLS_IBP_LINT_INDEX_HH_
