/**
 * @file
 * ibp_lint CLI: project-invariant static analysis for this tree.
 *
 * Exit codes: 0 clean (or everything fixed), 1 findings remain,
 * 2 usage / IO error.
 */

#include <cstring>
#include <filesystem>
#include <iostream>

#include "lint.hh"

namespace {

void
usage(std::ostream &out)
{
    out << "usage: ibp_lint [options]\n"
           "\n"
           "Project-invariant static analysis over src/, bench/,\n"
           "tools/, tests/ and examples/.\n"
           "\n"
           "  --root <dir>        tree to scan (default: .)\n"
           "  --json              machine-readable report on stdout\n"
           "  --rule <id>         run only this rule (repeatable)\n"
           "  --fix               reorder project includes into layer\n"
           "                      order in place\n"
           "  --fix-dry-run       print the --fix diff, change nothing\n"
           "  --update-manifest   regenerate the serde and budget\n"
           "                      shape manifests\n"
           "  --manifest <path>   serde manifest path relative to the\n"
           "                      root\n"
           "                      (default: tools/lint/serde_manifest.json)\n"
           "  --budget-manifest <path>\n"
           "                      budget manifest path relative to the\n"
           "                      root\n"
           "                      (default: tools/lint/budget_manifest.json)\n"
           "  --help              this text\n"
           "\n"
           "Suppress one finding with a comment on (or directly above)\n"
           "the offending line:  // ibp-lint: allow(rule-id)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ibp::lint::Options options;
    options.root = ".";
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "ibp_lint: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--fix") {
            options.fix = true;
        } else if (arg == "--fix-dry-run") {
            options.fixDryRun = true;
        } else if (arg == "--update-manifest") {
            options.updateManifest = true;
        } else if (arg == "--root") {
            options.root = need_value("--root");
        } else if (arg == "--manifest") {
            options.manifestPath = need_value("--manifest");
        } else if (arg == "--budget-manifest") {
            options.budgetManifestPath =
                need_value("--budget-manifest");
        } else if (arg == "--rule") {
            options.onlyRules.insert(need_value("--rule"));
        } else {
            std::cerr << "ibp_lint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (!std::filesystem::is_directory(options.root)) {
        std::cerr << "ibp_lint: root '" << options.root
                  << "' is not a directory\n";
        return 2;
    }

    const ibp::lint::Result result = ibp::lint::runLint(options);

    if ((options.fix || options.fixDryRun) && !result.fixDiff.empty())
        std::cerr << result.fixDiff;
    if (result.manifestUpdated)
        std::cerr << "ibp_lint: wrote " << options.manifestPath
                  << " and " << options.budgetManifestPath << "\n";

    if (json)
        ibp::lint::writeJsonReport(std::cout, options, result);
    else
        ibp::lint::writeTextReport(std::cout, result);

    return ibp::lint::exitCodeFor(result);
}
