#include "index.hh"

#include <algorithm>
#include <sstream>

namespace ibp::lint {

// ---------------------------------------------------------------------
// Layer model

const std::vector<std::string> kLayers = {
    "util", "trace", "obs", "workload", "predictors", "core", "sim",
};

int
layerRank(const std::string &layer)
{
    for (std::size_t i = 0; i < kLayers.size(); ++i)
        if (kLayers[i] == layer)
            return static_cast<int>(i);
    return kRankUnknown;
}

std::string
firstSegment(const std::string &path)
{
    const std::size_t slash = path.find('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

bool
isAppDir(const std::string &dir)
{
    return dir == "bench" || dir == "tools" || dir == "tests" ||
           dir == "examples";
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    return lines;
}

std::string
fnv1a(const std::vector<std::string> &tokens)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const std::string &token : tokens) {
        for (const char c : token) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
        hash ^= 0x1f; // token separator
        hash *= 1099511628211ULL;
    }
    std::ostringstream hex;
    hex << std::hex;
    hex.width(16);
    hex.fill('0');
    hex << hash;
    return hex.str();
}

std::size_t
matchingClose(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &opener = tokens[open].text;
    const std::string closer = opener == "{" ? "}" : ")";
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == opener)
            ++depth;
        else if (tokens[i].text == closer && --depth == 0)
            return i;
    }
    return tokens.size();
}

bool
isAccessSpecifier(const std::string &text)
{
    return text == "public" || text == "private" || text == "protected";
}

// ---------------------------------------------------------------------
// Serde-era class model (hash format pinned by serde_manifest.json)

std::string
shapeHash(const std::vector<Token> &tokens, std::size_t bodyBegin,
          std::size_t bodyEnd)
{
    std::vector<std::string> shape;
    std::vector<std::string> chunk;
    bool chunkHasParen = false;

    const auto flush = [&](bool keep) {
        if (keep && !chunk.empty() && !chunkHasParen) {
            static const std::set<std::string> excluded = {
                "using", "typedef", "friend", "template", "static",
            };
            if (!excluded.count(chunk.front()))
                for (std::string &t : chunk)
                    shape.push_back(std::move(t));
        }
        chunk.clear();
        chunkHasParen = false;
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        const Token &token = tokens[i];
        if (isAccessSpecifier(token.text) && i + 1 < bodyEnd &&
            tokens[i + 1].text == ":") {
            flush(false);
            ++i;
            continue;
        }
        if (token.text == "(") {
            chunkHasParen = true;
            i = std::min(matchingClose(tokens, i), bodyEnd);
            continue;
        }
        if (token.text == "{") {
            const std::size_t close =
                std::min(matchingClose(tokens, i), bodyEnd);
            if (chunkHasParen) {
                // Function definition: skip the body, drop the chunk.
                i = close;
                flush(false);
            } else {
                // Brace-init member or nested type definition: its
                // contents are shape-relevant.
                for (std::size_t j = i; j <= close && j < bodyEnd; ++j)
                    chunk.push_back(tokens[j].text);
                i = close;
            }
            continue;
        }
        if (token.text == ";") {
            flush(true);
            continue;
        }
        chunk.push_back(token.text);
    }
    flush(true);
    return fnv1a(shape);
}

std::vector<ClassInfo>
extractClasses(const SourceFile &file)
{
    std::vector<ClassInfo> classes;
    const std::vector<Token> &tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            (tokens[i].text != "class" && tokens[i].text != "struct"))
            continue;
        if (i > 0 && tokens[i - 1].text == "enum")
            continue; // enum class
        std::size_t j = i + 1;
        if (j >= tokens.size() ||
            tokens[j].kind != TokenKind::Identifier)
            continue; // anonymous
        ClassInfo info;
        info.name = tokens[j].text;
        info.file = file.relPath;
        info.line = tokens[i].line;
        ++j;
        if (j < tokens.size() && tokens[j].text == "final")
            ++j;
        if (j < tokens.size() && tokens[j].text == ":") {
            // Base clause: remember the last identifier of each
            // qualified base name at angle depth 0.
            int angle = 0;
            std::string last;
            ++j;
            for (; j < tokens.size() && tokens[j].text != ";" &&
                   !(tokens[j].text == "{" && angle == 0);
                 ++j) {
                const Token &t = tokens[j];
                if (t.text == "<")
                    ++angle;
                else if (t.text == ">")
                    --angle;
                else if (t.text == "," && angle == 0) {
                    if (!last.empty())
                        info.bases.push_back(last);
                    last.clear();
                } else if (t.kind == TokenKind::Identifier &&
                           angle == 0 && t.text != "virtual" &&
                           !isAccessSpecifier(t.text)) {
                    last = t.text;
                }
            }
            if (!last.empty())
                info.bases.push_back(last);
        }
        if (j >= tokens.size() || tokens[j].text != "{")
            continue; // forward declaration or variable
        const std::size_t bodyBegin = j + 1;
        const std::size_t bodyEnd = matchingClose(tokens, j);

        int depth = 1;
        for (std::size_t k = bodyBegin; k < bodyEnd; ++k) {
            const Token &t = tokens[k];
            if (t.text == "{")
                ++depth;
            else if (t.text == "}")
                --depth;
            else if (depth == 1 &&
                     t.kind == TokenKind::Identifier &&
                     k + 1 < bodyEnd && tokens[k + 1].text == "(")
                info.methods.insert(t.text);
        }
        info.declaresSaveState = info.methods.count("saveState") > 0;
        if (info.declaresSaveState || !info.bases.empty())
            info.shapeHash = shapeHash(tokens, bodyBegin, bodyEnd);
        classes.push_back(std::move(info));
    }
    return classes;
}

// ---------------------------------------------------------------------
// Semantic index

namespace {

/** Pragma lookup spanning the annotated line and up to two lines
 *  above it (out-of-line definitions put the return type on its own
 *  line, so the comment often sits two lines above the name). */
std::string
pragmaNear(const std::map<int, std::string> &pragmas, int line,
           int reach)
{
    for (int at = line; at >= line - reach && at > 0; --at) {
        auto it = pragmas.find(at);
        if (it != pragmas.end())
            return it->second;
    }
    return std::string();
}

const std::set<std::string> kDeclExcluded = {
    "using", "typedef", "friend",  "template",
    "static", "struct", "class",   "enum",
    "union",  "public", "private", "protected",
};

/** Parse a constructor member-init list (tokens between the ':' after
 *  the parameter list and the opening '{') into per-member extent
 *  tokens. */
void
parseCtorInits(const std::vector<Token> &tokens, std::size_t begin,
               std::size_t end, IndexedClass &cls)
{
    for (std::size_t i = begin; i < end; ++i) {
        if (tokens[i].kind != TokenKind::Identifier)
            continue;
        if (i + 1 >= end ||
            (tokens[i + 1].text != "(" && tokens[i + 1].text != "{"))
            continue;
        const std::size_t close = matchingClose(tokens, i + 1);
        std::vector<std::string> &sink = cls.ctorInits[tokens[i].text];
        for (std::size_t j = i + 2; j < close && j < end; ++j)
            sink.push_back(tokens[j].text);
        i = std::min(close, end);
    }
}

/** Extract the members, in-class method bodies and ctor-init extents
 *  of one class body ([bodyBegin, bodyEnd) at depth 1). */
void
indexClassBody(const SourceFile &file, std::size_t bodyBegin,
               std::size_t bodyEnd, IndexedClass &cls)
{
    const std::vector<Token> &tokens = file.lexed.tokens;
    std::vector<std::size_t> chunk; ///< token indices of the statement

    const auto flushMember = [&] {
        if (chunk.empty())
            return;
        if (kDeclExcluded.count(tokens[chunk.front()].text)) {
            chunk.clear();
            return;
        }
        // Member name: the last identifier at angle depth 0 before
        // the initializer ('=', '{' or '[');  the declared type is
        // everything before it, the extent everything after.
        int angle = 0;
        std::size_t nameAt = chunk.size();
        std::size_t split = chunk.size();
        for (std::size_t c = 0; c < chunk.size(); ++c) {
            const Token &t = tokens[chunk[c]];
            if (t.text == "<")
                ++angle;
            else if (t.text == ">")
                angle = std::max(0, angle - 1);
            else if (angle == 0 && (t.text == "=" || t.text == "[" ||
                                    t.text == "{")) {
                split = c;
                break;
            }
        }
        for (std::size_t c = 0; c < split; ++c)
            if (tokens[chunk[c]].kind == TokenKind::Identifier)
                nameAt = c;
        if (nameAt == chunk.size()) {
            chunk.clear();
            return;
        }
        Member member;
        member.name = tokens[chunk[nameAt]].text;
        member.line = tokens[chunk[nameAt]].line;
        for (std::size_t c = 0; c < nameAt; ++c)
            member.typeTokens.push_back(tokens[chunk[c]].text);
        for (std::size_t c = nameAt + 1; c < chunk.size(); ++c)
            member.initTokens.push_back(tokens[chunk[c]].text);
        member.guardedBy =
            pragmaNear(file.lexed.guards, member.line, 1);
        cls.members.push_back(std::move(member));
        chunk.clear();
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        const Token &token = tokens[i];
        if (isAccessSpecifier(token.text) && i + 1 < bodyEnd &&
            tokens[i + 1].text == ":") {
            chunk.clear();
            ++i;
            continue;
        }
        if (token.text == ";") {
            flushMember();
            continue;
        }
        if (token.text == "{") {
            const std::size_t close =
                std::min(matchingClose(tokens, i), bodyEnd);
            if (!chunk.empty() &&
                kDeclExcluded.count(tokens[chunk.front()].text)) {
                // Nested type definition: indexed separately by the
                // linear class scan; not a member of this class.
                chunk.clear();
                i = close;
                continue;
            }
            // Brace initializer: keep the tokens in the chunk so the
            // extent expression survives into the shape hash.
            for (std::size_t j = i; j <= close && j < bodyEnd; ++j)
                chunk.push_back(j);
            i = close;
            continue;
        }
        if (token.text == "(") {
            // A '(' before any '=' at statement level means this
            // chunk is a method (or macro splice), not a member.
            bool in_init = false;
            for (const std::size_t c : chunk)
                if (tokens[c].text == "=") {
                    in_init = true;
                    break;
                }
            if (in_init) {
                const std::size_t close =
                    std::min(matchingClose(tokens, i), bodyEnd);
                for (std::size_t j = i; j <= close && j < bodyEnd; ++j)
                    chunk.push_back(j);
                i = close;
                continue;
            }
            std::string methodName;
            int methodLine = token.line;
            if (!chunk.empty() &&
                tokens[chunk.back()].kind == TokenKind::Identifier) {
                methodName = tokens[chunk.back()].text;
                methodLine = tokens[chunk.back()].line;
            }
            std::size_t j =
                std::min(matchingClose(tokens, i), bodyEnd) + 1;
            while (j < bodyEnd && (tokens[j].text == "const" ||
                                   tokens[j].text == "override" ||
                                   tokens[j].text == "final" ||
                                   tokens[j].text == "noexcept" ||
                                   tokens[j].text == "mutable" ||
                                   tokens[j].text == "&"))
                ++j;
            if (j < bodyEnd && tokens[j].text == ":" &&
                methodName == cls.name) {
                // In-class constructor: capture the init-list extents.
                std::size_t open = j + 1;
                int depth = 0;
                for (; open < bodyEnd; ++open) {
                    const std::string &t = tokens[open].text;
                    if (t == "(")
                        ++depth;
                    else if (t == ")")
                        --depth;
                    else if (t == "{" && depth == 0)
                        break;
                    else if (t == "}" && depth == 0)
                        break;
                }
                parseCtorInits(tokens, j + 1, open, cls);
                j = open;
            }
            if (!methodName.empty())
                cls.methodNames.insert(methodName);
            if (j < bodyEnd && tokens[j].text == "{") {
                const std::size_t close =
                    std::min(matchingClose(tokens, j), bodyEnd);
                if (!methodName.empty()) {
                    MethodBody body;
                    body.file = &file;
                    body.bodyBegin = j + 1;
                    body.bodyEnd = close;
                    body.line = methodLine;
                    body.requiresLock = pragmaNear(
                        file.lexed.requiresLock, methodLine, 2);
                    cls.bodies[methodName].push_back(body);
                }
                i = close;
            } else {
                i = j > i ? j - 1 : i;
            }
            chunk.clear();
            continue;
        }
        if (token.text == "}") // stray (unbalanced fixture); resync
        {
            chunk.clear();
            continue;
        }
        chunk.push_back(i);
    }
    flushMember();
}

/** Scan one file for class/struct definitions (including nested
 *  ones, which the linear scan visits on its own). */
void
indexFileClasses(const SourceFile &file,
                 std::map<std::string, IndexedClass> &classes)
{
    const std::vector<Token> &tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            (tokens[i].text != "class" && tokens[i].text != "struct"))
            continue;
        if (i > 0 && tokens[i - 1].text == "enum")
            continue;
        std::size_t j = i + 1;
        if (j >= tokens.size() ||
            tokens[j].kind != TokenKind::Identifier)
            continue;
        IndexedClass cls;
        cls.name = tokens[j].text;
        cls.file = file.relPath;
        cls.line = tokens[i].line;
        ++j;
        if (j < tokens.size() && tokens[j].text == "final")
            ++j;
        if (j < tokens.size() && tokens[j].text == ":") {
            int angle = 0;
            std::string last;
            ++j;
            for (; j < tokens.size() && tokens[j].text != ";" &&
                   !(tokens[j].text == "{" && angle == 0);
                 ++j) {
                const Token &t = tokens[j];
                if (t.text == "<")
                    ++angle;
                else if (t.text == ">")
                    --angle;
                else if (t.text == "," && angle == 0) {
                    if (!last.empty())
                        cls.bases.push_back(last);
                    last.clear();
                } else if (t.kind == TokenKind::Identifier &&
                           angle == 0 && t.text != "virtual" &&
                           !isAccessSpecifier(t.text)) {
                    last = t.text;
                }
            }
            if (!last.empty())
                cls.bases.push_back(last);
        }
        if (j >= tokens.size() || tokens[j].text != "{")
            continue;
        indexClassBody(file, j + 1, matchingClose(tokens, j), cls);
        auto [it, fresh] = classes.try_emplace(cls.name, cls);
        if (!fresh)
            classes.try_emplace(cls.name + "@" + cls.file,
                                std::move(cls));
        else
            (void)it;
    }
}

/** Attach out-of-line `Class::method(...) { ... }` definitions (and
 *  out-of-line constructor init-list extents) to indexed classes. */
void
indexOutOfLineBodies(const SourceFile &file,
                     std::map<std::string, IndexedClass> &classes)
{
    const std::vector<Token> &tokens = file.lexed.tokens;
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            tokens[i + 1].text != "::")
            continue;
        // Walk the qualified chain: Id (:: Id)+
        std::size_t j = i;
        std::string clsName, methodName;
        while (j + 2 < tokens.size() && tokens[j + 1].text == "::" &&
               tokens[j + 2].kind == TokenKind::Identifier) {
            clsName = tokens[j].text;
            methodName = tokens[j + 2].text;
            j += 2;
        }
        if (methodName.empty() || j + 1 >= tokens.size() ||
            tokens[j + 1].text != "(")
            continue;
        // Destructor names lex as "~" + Identifier; the "~" sits
        // before the method name token, so `~Foo` arrives here with
        // methodName == "Foo" — treat it as the destructor.
        const bool dtor = tokens[j - 1].text == "~";
        auto found = classes.find(clsName);
        if (found == classes.end()) {
            i = j;
            continue;
        }
        std::size_t k = matchingClose(tokens, j + 1) + 1;
        while (k < tokens.size() && (tokens[k].text == "const" ||
                                     tokens[k].text == "noexcept" ||
                                     tokens[k].text == "&"))
            ++k;
        if (k < tokens.size() && tokens[k].text == ":" &&
            methodName == clsName && !dtor) {
            std::size_t open = k + 1;
            int depth = 0;
            for (; open < tokens.size(); ++open) {
                const std::string &t = tokens[open].text;
                if (t == "(")
                    ++depth;
                else if (t == ")")
                    --depth;
                else if ((t == "{" || t == ";") && depth == 0)
                    break;
            }
            parseCtorInits(tokens, k + 1, open, found->second);
            k = open;
        }
        if (k >= tokens.size() || tokens[k].text != "{") {
            i = j;
            continue;
        }
        MethodBody body;
        body.file = &file;
        body.bodyBegin = k + 1;
        body.bodyEnd = matchingClose(tokens, k);
        body.line = tokens[j].line;
        body.outOfLine = true;
        body.requiresLock =
            pragmaNear(file.lexed.requiresLock, body.line, 2);
        const std::string key = dtor ? "~" + methodName : methodName;
        found->second.methodNames.insert(key);
        found->second.bodies[key].push_back(body);
        i = body.bodyEnd;
    }
}

} // namespace

const SourceFile *
SemanticIndex::findFile(const std::string &relPath) const
{
    auto it = filesByPath_.find(relPath);
    return it == filesByPath_.end() ? nullptr : it->second;
}

const IndexedClass *
SemanticIndex::findClass(const std::string &name) const
{
    auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
}

std::string
SemanticIndex::budgetShapeHash(const IndexedClass &cls) const
{
    std::vector<std::string> shape;
    std::set<std::string> seen;
    const auto emit = [&](const IndexedClass &c, const auto &self) {
        if (!seen.insert(c.name).second)
            return;
        shape.push_back(c.name);
        for (const Member &member : c.members) {
            shape.push_back(member.name);
            shape.insert(shape.end(), member.typeTokens.begin(),
                         member.typeTokens.end());
            shape.insert(shape.end(), member.initTokens.begin(),
                         member.initTokens.end());
            auto init = c.ctorInits.find(member.name);
            if (init != c.ctorInits.end())
                shape.insert(shape.end(), init->second.begin(),
                             init->second.end());
        }
        // Recurse through member types defined in the tree so a
        // geometry edit in a composed class (PathComponent, Ppm)
        // drifts the owner's budget hash too.
        for (const Member &member : c.members)
            for (const std::string &t : member.typeTokens) {
                auto sub = classes.find(t);
                if (sub != classes.end() && sub->second.name != c.name)
                    self(sub->second, self);
            }
    };
    emit(cls, emit);
    return fnv1a(shape);
}

void
SemanticIndex::build(const std::vector<SourceFile> &files)
{
    classes.clear();
    serdeClasses.clear();
    includeEdges.clear();
    filesByPath_.clear();

    for (const SourceFile &file : files)
        filesByPath_.emplace(file.relPath, &file);

    for (const SourceFile &file : files) {
        if (file.dir == "src")
            for (ClassInfo &info : extractClasses(file)) {
                auto [it, fresh] =
                    serdeClasses.try_emplace(info.name, info);
                if (!fresh)
                    serdeClasses.try_emplace(
                        info.name + "@" + info.file, info);
                else
                    (void)it;
            }
        indexFileClasses(file, classes);
    }
    for (const SourceFile &file : files)
        indexOutOfLineBodies(file, classes);

    // Resolve quoted includes against the scanned tree: includer-dir
    // relative first, then src/-relative, then root-relative.
    for (const SourceFile &file : files) {
        const std::size_t slash = file.relPath.rfind('/');
        const std::string dir =
            slash == std::string::npos
                ? std::string()
                : file.relPath.substr(0, slash + 1);
        for (const Include &include : file.lexed.includes) {
            if (include.angled)
                continue;
            const SourceFile *target = nullptr;
            for (const std::string &candidate :
                 {dir + include.path, "src/" + include.path,
                  include.path})
                if ((target = findFile(candidate)) != nullptr)
                    break;
            if (target)
                includeEdges[file.relPath].emplace_back(
                    target->relPath, include.line);
        }
    }
}

} // namespace ibp::lint
