/**
 * @file
 * A minimal C++ tokenizer for ibp_lint.
 *
 * This is not a compiler front end: it splits a translation unit into
 * identifiers, literals and punctuation with line numbers, strips
 * comments (capturing the `// ibp-lint:` pragma family — allow(),
 * guarded_by(), requires_lock()), and records #include directives.
 * That is exactly enough surface for the project-invariant rules in
 * lint.cc — include-graph layering, banned-token determinism checks,
 * and the semantic-index passes in index.cc — while staying
 * dependency-free and fast enough to lex the whole tree on every
 * commit.
 */

#ifndef IBP_TOOLS_IBP_LINT_LEXER_HH_
#define IBP_TOOLS_IBP_LINT_LEXER_HH_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ibp::lint {

enum class TokenKind
{
    Identifier,
    Number,
    String, ///< text holds the literal's contents, quotes stripped
    CharLit,
    Punct, ///< single characters, except "::" which stays one token
};

struct Token
{
    TokenKind kind;
    std::string text;
    int line;
};

/** One #include directive. */
struct Include
{
    std::string path;
    bool angled = false;
    int line = 0;
};

/** A lexed source file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Include> includes;
    /** line -> rule ids suppressed by an `ibp-lint: allow(...)`
     *  comment starting on that line ("all" suppresses every rule). */
    std::map<int, std::set<std::string>> allows;
    /** line -> mutex name from `ibp-lint: guarded_by(<mutex>)`: the
     *  data member declared on (or just below) that line may only be
     *  touched while the named mutex is held (lock-discipline). */
    std::map<int, std::string> guards;
    /** line -> mutex name from `ibp-lint: requires_lock(<mutex>)`:
     *  the method defined at that line is documented as called with
     *  the named mutex already held. */
    std::map<int, std::string> requiresLock;
    int lineCount = 0;
};

/** Tokenize @p text (the contents of one source file). */
LexedFile lexFile(const std::string &text);

} // namespace ibp::lint

#endif // IBP_TOOLS_IBP_LINT_LEXER_HH_
