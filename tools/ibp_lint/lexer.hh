/**
 * @file
 * A minimal C++ tokenizer for ibp_lint.
 *
 * This is not a compiler front end: it splits a translation unit into
 * identifiers, literals and punctuation with line numbers, strips
 * comments (capturing `// ibp-lint: allow(<rule>)` suppression
 * pragmas), and records #include directives.  That is exactly enough
 * surface for the project-invariant rules in lint.cc — include-graph
 * layering, banned-token determinism checks, and token-pattern
 * heuristics over class bodies — while staying dependency-free and
 * fast enough to lex the whole tree on every commit.
 */

#ifndef IBP_TOOLS_IBP_LINT_LEXER_HH_
#define IBP_TOOLS_IBP_LINT_LEXER_HH_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ibp::lint {

enum class TokenKind
{
    Identifier,
    Number,
    String, ///< text holds the literal's contents, quotes stripped
    CharLit,
    Punct, ///< single characters, except "::" which stays one token
};

struct Token
{
    TokenKind kind;
    std::string text;
    int line;
};

/** One #include directive. */
struct Include
{
    std::string path;
    bool angled = false;
    int line = 0;
};

/** A lexed source file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Include> includes;
    /** line -> rule ids suppressed by an `ibp-lint: allow(...)`
     *  comment starting on that line ("all" suppresses every rule). */
    std::map<int, std::set<std::string>> allows;
    int lineCount = 0;
};

/** Tokenize @p text (the contents of one source file). */
LexedFile lexFile(const std::string &text);

} // namespace ibp::lint

#endif // IBP_TOOLS_IBP_LINT_LEXER_HH_
