/**
 * @file
 * The ibp_lint rule engine: project-invariant static analysis over
 * the repository tree.
 *
 * Rules (each individually suppressible with a trailing or
 * preceding-line `// ibp-lint: allow(<rule>)` comment):
 *
 *  - layering                  back-edge #include against the layer
 *                              DAG util < trace < obs < workload <
 *                              predictors < core < sim, and any
 *                              tests//bench//tools/ include from src/
 *  - include-order             project include blocks not sorted into
 *                              layer order (fixable with --fix)
 *  - determinism-random       rand()/srand()/std::random_device in
 *                              src/ outside obs/
 *  - determinism-clock         argless ::now() or time() wall-clock
 *                              reads in src/ outside obs/
 *  - determinism-unordered-iter range-for iteration over a
 *                              std::unordered_map/set declared in the
 *                              same file (order feeds metrics,
 *                              reports or serde)
 *  - table-modulo              `%` indexing in src/core or
 *                              src/predictors outside geometry
 *                              validation (use Table::reduce() or
 *                              util::reduceIndex())
 *  - serde-coverage            a factory-registered predictor (or any
 *                              IndirectPredictor subclass in src/)
 *                              missing saveState/loadState/
 *                              snapshotProbes declarations
 *  - serde-manifest            the member-declaration shape hash of a
 *                              checkpointed class differs from
 *                              tools/lint/serde_manifest.json
 *                              (regenerate with --update-manifest)
 *  - probe-name                probe names registered in
 *                              snapshotProbes() not matching
 *                              [a-z0-9_]+(/[a-z0-9_]+)*
 *
 * Semantic-index rules (built on tools/ibp_lint/index.cc):
 *
 *  - budget-accounting         a factory predictor class missing a
 *                              storageBits() override, a table-like
 *                              data member (DirectTable/AssocTable/
 *                              FlatMap/std::array/history register)
 *                              unreferenced in its storageBits()
 *                              expression, or a geometry shape drift
 *                              against tools/lint/budget_manifest.json
 *                              (regenerate with --update-manifest)
 *  - hot-path-alloc            allocation, string construction or
 *                              throw inside predict/update/
 *                              predictAndUpdate/train bodies in
 *                              src/predictors + src/core
 *  - lock-discipline           a member annotated
 *                              `// ibp-lint: guarded_by(m)` touched in
 *                              a method body that neither constructs
 *                              a lock_guard/unique_lock/scoped_lock
 *                              on `m` nor carries
 *                              `// ibp-lint: requires_lock(m)`
 *  - include-graph             a .cc not including its same-stem
 *                              sibling header, or a cycle in the
 *                              resolved quoted-include graph
 */

#ifndef IBP_TOOLS_IBP_LINT_LINT_HH_
#define IBP_TOOLS_IBP_LINT_LINT_HH_

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ibp::lint {

struct Finding
{
    std::string rule;
    std::string file; ///< path relative to the lint root
    int line = 0;
    std::string message;
    bool fixed = false; ///< repaired by --fix in this run
};

struct Options
{
    std::string root;                   ///< repository root to scan
    std::string manifestPath;           ///< relative to root
    std::string budgetManifestPath;     ///< relative to root
    bool updateManifest = false;        ///< rewrite both manifests
    bool fix = false;                   ///< apply mechanical fixes
    bool fixDryRun = false;             ///< print the diff, touch nothing
    std::set<std::string> onlyRules;    ///< empty = all rules

    Options()
        : manifestPath("tools/lint/serde_manifest.json"),
          budgetManifestPath("tools/lint/budget_manifest.json")
    {
    }
};

struct Result
{
    std::vector<Finding> findings;
    int suppressed = 0;            ///< findings silenced by allow()
    std::vector<std::string> scannedFiles;
    /** factory-registered predictor name -> implementing class. */
    std::map<std::string, std::string> factoryPredictors;
    /** checkpointed class -> current shape hash (hex). */
    std::map<std::string, std::string> serdeHashes;
    /** factory name -> current budget geometry shape hash (hex). */
    std::map<std::string, std::string> budgetHashes;
    std::string fixDiff;           ///< unified diff of --fix rewrites
    bool manifestUpdated = false;
};

/** Run every (selected) rule over the tree under options.root. */
Result runLint(const Options &options);

/** 0 when no unfixed findings remain, 1 otherwise. */
int exitCodeFor(const Result &result);

/** Machine-readable report (schema "ibp-lint-v1"). */
void writeJsonReport(std::ostream &out, const Options &options,
                     const Result &result);

/** Human-readable file:line: [rule] message listing. */
void writeTextReport(std::ostream &out, const Result &result);

} // namespace ibp::lint

#endif // IBP_TOOLS_IBP_LINT_LINT_HH_
