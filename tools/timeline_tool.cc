/**
 * @file
 * timeline_tool: inspect, compare and export the timeline section of
 * ibp_report.json run reports.
 *
 *   timeline_tool <report.json>                print every timeline
 *   timeline_tool --sparkline <report.json>    one sparkline per cell
 *   timeline_tool --diff <before> <after>      compare timelines
 *                 [--tolerance <pct>]          window/steady-state gate
 *   timeline_tool --export-perfetto <report.json> [--out <path>]
 *                                              write the branch-time
 *                                              tracks as Chrome
 *                                              trace-event JSON
 *   timeline_tool --emit-golden <out.json>     run the golden timeline
 *                                              configuration and write
 *                                              its report
 *
 * --diff exits non-zero iff a timeline shape mismatch, a per-window
 * miss% delta beyond the tolerance, or a steady-state regression is
 * found; every failure names the exact window/metric path.  CI diffs
 * fresh --emit-golden runs against tests/golden/timeline_small.json.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "obs/trace_event.hh"
#include "workload/profiles.hh"
#include "sim/experiment.hh"

namespace {

using namespace ibp;

int
usage()
{
    std::cerr
        << "usage: timeline_tool <report.json>\n"
        << "       timeline_tool --sparkline <report.json>\n"
        << "       timeline_tool --diff <before.json> <after.json>"
           " [--tolerance <pct>]\n"
        << "       timeline_tool --export-perfetto <report.json>"
           " [--out <trace.json>]\n"
        << "       timeline_tool --emit-golden <out.json>\n";
    return 2;
}

int
printTimelines(const std::string &path)
{
    const obs::RunReport report = obs::readReportFile(path);
    if (report.timelines.empty()) {
        std::cout << "no timelines in " << path
                  << " (run the driver with --timeline-interval=)\n";
        return 0;
    }
    for (const auto &entry : report.timelines) {
        const auto &windows = entry.timeline.windows();
        std::cout << "(" << entry.row << ", " << entry.predictor
                  << "): interval " << entry.timeline.interval()
                  << ", " << windows.size() << " windows\n";
        for (std::size_t w = 0; w < windows.size(); ++w) {
            std::printf(
                "  [%3zu] end %10llu  pred %8llu  miss %7.3f%%"
                "  nopred %7.3f%%\n",
                w,
                static_cast<unsigned long long>(windows[w].endBranch),
                static_cast<unsigned long long>(
                    windows[w].predictions),
                windows[w].missPercent(),
                windows[w].noPredictionPercent());
        }
        if (entry.segmentation.hasChangePoint)
            std::printf("  warmup %.3f%% -> steady %.3f%% from "
                        "window %zu\n",
                        entry.segmentation.warmupMissPercent,
                        entry.segmentation.steadyMissPercent,
                        entry.segmentation.steadyStart);
        else
            std::printf("  steady throughout (%.3f%%)\n",
                        entry.segmentation.overallMissPercent);
        for (const auto &milestone :
             obs::timelineMilestones(entry.timeline))
            std::printf("  milestone @%llu: %s %s (delta %llu)\n",
                        static_cast<unsigned long long>(
                            milestone.branch),
                        milestone.kind.c_str(),
                        milestone.counter.c_str(),
                        static_cast<unsigned long long>(
                            milestone.value));
    }
    return 0;
}

int
sparklines(const std::string &path)
{
    const obs::RunReport report = obs::readReportFile(path);
    if (report.timelines.empty()) {
        std::cout << "no timelines in " << path << '\n';
        return 0;
    }
    std::size_t width = 0;
    for (const auto &entry : report.timelines)
        width = std::max(width,
                         entry.row.size() + entry.predictor.size() + 3);
    for (const auto &entry : report.timelines) {
        const std::string label =
            entry.row + " / " + entry.predictor;
        const auto curve = entry.timeline.missCurve();
        double lo = 0, hi = 0;
        if (!curve.empty()) {
            lo = hi = curve.front();
            for (double v : curve) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
        std::printf("%-*s %s  [%.2f%% .. %.2f%%]\n",
                    static_cast<int>(width), label.c_str(),
                    obs::sparkline(curve).c_str(), lo, hi);
    }
    return 0;
}

int
diff(const std::string &before_path, const std::string &after_path,
     double tolerance)
{
    const obs::RunReport before = obs::readReportFile(before_path);
    const obs::RunReport after = obs::readReportFile(after_path);
    if (before.timelines.empty() && after.timelines.empty()) {
        std::cout << "neither report carries timelines; "
                     "nothing to compare\n";
        return 0;
    }
    // Reuse the report diff engine but keep only timeline findings,
    // so this tool gates on the curves alone (report_tool --diff is
    // the whole-report gate).
    obs::RunReport before_tl;
    before_tl.timelines = before.timelines;
    obs::RunReport after_tl;
    after_tl.timelines = after.timelines;
    const obs::ReportDiff result =
        obs::diffReports(before_tl, after_tl, tolerance);
    obs::printDiff(std::cout, result);
    return result.clean() ? 0 : 1;
}

int
exportPerfetto(const std::string &report_path,
               const std::string &out_path)
{
    const obs::RunReport report = obs::readReportFile(report_path);
    fatal_if(report.timelines.empty(), "no timelines in ", report_path,
             "; run the driver with --timeline-interval= first");
    std::vector<obs::TraceEvent> events;
    std::uint64_t pid = obs::kTimelinePidBase;
    for (const auto &entry : report.timelines)
        obs::appendTimelineEvents(entry.timeline,
                                  entry.row + " x " + entry.predictor,
                                  pid++, events);
    obs::writeTraceEventsFile(out_path, events);
    std::cout << "wrote " << out_path << " (" << events.size()
              << " events); open in https://ui.perfetto.dev\n";
    return 0;
}

/**
 * The golden timeline configuration: the golden-suite matrix
 * (perl/eon/gs.tig x BTB/TC-PIB/Cascade/PPM-hyb/ITTAGE/Perceptron at scale 0.02,
 * serial) sampled every 4000 records with probe sampling off, so the
 * fixture is identical across instrumented and probe-free builds.
 */
int
emitGolden(const std::string &out_path)
{
    const std::vector<std::string> profile_names = {"perl", "eon",
                                                    "gs.tig"};
    const std::vector<std::string> predictors = {
        "BTB", "TC-PIB", "Cascade", "PPM-hyb", "ITTAGE", "Perceptron"};

    const auto suite = workload::standardSuite();
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &name : profile_names) {
        const auto *profile = workload::findProfile(suite, name);
        fatal_if(profile == nullptr, "standard suite lost profile ",
                 name);
        profiles.push_back(*profile);
    }

    sim::SuiteOptions options;
    options.traceScale = 0.02;
    options.threads = 1;
    options.engine.timeline.interval = 4000;
    options.engine.timeline.sampleProbes = false;
    sim::SuiteTiming timing;
    const sim::SuiteResult result =
        sim::runSuite(profiles, predictors, options, &timing);

    const obs::RunReport report = sim::buildRunReport(
        "timeline_tool --emit-golden", options, result, timing);
    obs::writeReportFile(out_path, report);
    std::cout << "wrote " << out_path << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();

    if (args[0] == "--diff") {
        double tolerance = 0;
        std::vector<std::string> paths;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--tolerance") {
                if (++i == args.size())
                    return usage();
                tolerance = std::strtod(args[i].c_str(), nullptr);
            } else {
                paths.push_back(args[i]);
            }
        }
        if (paths.size() != 2 || tolerance < 0)
            return usage();
        return diff(paths[0], paths[1], tolerance);
    }

    if (args[0] == "--sparkline")
        return args.size() == 2 ? sparklines(args[1]) : usage();

    if (args[0] == "--export-perfetto") {
        std::string out = "ibp_timeline_trace.json";
        std::vector<std::string> paths;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--out") {
                if (++i == args.size())
                    return usage();
                out = args[i];
            } else {
                paths.push_back(args[i]);
            }
        }
        if (paths.size() != 1)
            return usage();
        return exportPerfetto(paths[0], out);
    }

    if (args[0] == "--emit-golden")
        return args.size() == 2 ? emitGolden(args[1]) : usage();

    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage();
    return printTimelines(args[0]);
}
