/**
 * @file
 * Adversarial workload fuzzer CLI.
 *
 * Runs the deterministic coverage-guided search (sim/fuzz.hh) and
 * emits the machine-readable findings document on stdout (or --out),
 * with a human summary on stderr.  Typical workflows:
 *
 *   fuzz_tool --seed=42 --budget=2000                 # PR-sized run
 *   fuzz_tool --seed=7 --budget=20000 --out=f.json    # nightly run
 *   fuzz_tool --budget=500 --emit-profiles=profiles/  # save repros
 *   fuzz_tool --known=tests/regression_profiles ...   # CI gate: exit
 *       3 only when a finding's key is not already pinned there
 *
 * The JSON document is a pure function of the options (threads
 * excluded), so two runs with the same seed/budget are byte-identical
 * — which is itself asserted in CI.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"
#include "obs/trace_event.hh"
#include "workload/adversarial.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/factory.hh"
#include "sim/fuzz.hh"

namespace {

namespace fs = std::filesystem;

void
usage(std::ostream &out)
{
    out << "usage: fuzz_tool [options]\n"
           "  --seed=N            master search seed (default 42)\n"
           "  --budget=N          candidates to generate (default "
           "2000)\n"
           "  --records=N         records per candidate trace "
           "(default 8000)\n"
           "  --threads=N         worker threads (default: all "
           "cores)\n"
           "  --margin=PP         ranking-inversion margin in "
           "percentage\n"
           "                      points (default 2.0)\n"
           "  --tolerance=PP      oracle-deviation tolerance "
           "(default 1.0)\n"
           "  --predictor=NAME    restrict the lineup (repeatable)\n"
           "  --minimize          shrink findings (default)\n"
           "  --no-minimize       keep findings as found\n"
           "  --out=FILE          findings JSON path (default "
           "stdout)\n"
           "  --emit-profiles=DIR write each finding's reproducer "
           "profile\n"
           "  --known=DIR         exit 0 when every finding's key "
           "matches a\n"
           "                      profile already in DIR; exit 3 "
           "otherwise\n"
           "  --timeline=DIR      write a Perfetto trace per finding "
           "(the\n"
           "                      involved predictors' windowed miss "
           "curves\n"
           "                      over the reproducer workload)\n"
           "  --help              this text\n";
}

bool
parseFlag(std::string_view arg, std::string_view name,
          std::string_view &value)
{
    if (!arg.starts_with(name))
        return false;
    arg.remove_prefix(name.size());
    if (!arg.starts_with("="))
        return false;
    arg.remove_prefix(1);
    value = arg;
    return true;
}

std::uint64_t
parseU64(std::string_view value, std::string_view flag)
{
    std::uint64_t out = 0;
    for (char c : value) {
        fatal_if(c < '0' || c > '9', "bad ", flag, " value: ",
                 std::string(value));
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    fatal_if(value.empty(), "empty ", flag, " value");
    return out;
}

double
parseDouble(std::string_view value, std::string_view flag)
{
    try {
        return std::stod(std::string(value));
    } catch (...) {
        fatal("bad ", flag, " value: ", std::string(value));
    }
}

/**
 * Collect the finding keys already pinned under a regression-profile
 * directory: each committed profile names its key in the "note" field
 * via the reproducer naming convention, so matching on the suggested
 * name is enough (and keeps the files self-describing).
 */
/**
 * Write one Perfetto trace for a finding: the involved predictors'
 * deterministic windowed miss curves over the reproducer workload
 * (64 windows, probe counters included).  Pure function of the
 * finding, so reruns regenerate identical traces.
 */
void
writeFindingTimeline(const std::string &dir,
                     const ibp::sim::FuzzFinding &finding)
{
    std::vector<std::string> predictors;
    if (!finding.better.empty())
        predictors.push_back(finding.better);
    if (!finding.worse.empty() && finding.worse != finding.better)
        predictors.push_back(finding.worse);
    if (predictors.empty())
        return;

    ibp::trace::TraceBuffer buffer =
        ibp::sim::generateTrace(finding.profile);
    ibp::sim::EngineConfig config;
    config.timeline.interval =
        std::max<std::uint64_t>(1, finding.profile.records / 64);

    std::vector<ibp::obs::TraceEvent> events;
    std::uint64_t pid = ibp::obs::kTimelinePidBase;
    for (const auto &name : predictors) {
        auto predictor = ibp::sim::makePredictor(name);
        ibp::sim::Engine engine(config);
        ibp::obs::Timeline timeline;
        buffer.rewind();
        engine.run(buffer, *predictor, nullptr, &timeline);
        ibp::obs::appendTimelineEvents(timeline, name, pid++, events);
    }

    const std::string path =
        (fs::path(dir) /
         (ibp::sim::suggestedProfileName(finding) + ".trace.json"))
            .string();
    ibp::obs::writeTraceEventsFile(path, events);
    std::cerr << "timeline: " << path << "\n";
}

std::vector<std::string>
knownProfileNames(const std::string &dir)
{
    std::vector<std::string> names;
    if (!fs::is_directory(dir))
        return names;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".json")
            names.push_back(entry.path().stem().string());
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    ibp::sim::FuzzOptions options;
    std::string out_path;
    std::string emit_dir;
    std::string known_dir;
    std::string timeline_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string_view value;
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--minimize") {
            options.minimize = true;
        } else if (arg == "--no-minimize") {
            options.minimize = false;
        } else if (parseFlag(arg, "--seed", value)) {
            options.seed = parseU64(value, "--seed");
        } else if (parseFlag(arg, "--budget", value)) {
            options.budget = parseU64(value, "--budget");
        } else if (parseFlag(arg, "--records", value)) {
            options.records = parseU64(value, "--records");
        } else if (parseFlag(arg, "--threads", value)) {
            options.threads =
                static_cast<unsigned>(parseU64(value, "--threads"));
        } else if (parseFlag(arg, "--margin", value)) {
            options.inversionMargin = parseDouble(value, "--margin");
        } else if (parseFlag(arg, "--tolerance", value)) {
            options.oracleTolerance =
                parseDouble(value, "--tolerance");
        } else if (parseFlag(arg, "--predictor", value)) {
            options.predictors.emplace_back(value);
        } else if (parseFlag(arg, "--out", value)) {
            out_path = std::string(value);
        } else if (parseFlag(arg, "--emit-profiles", value)) {
            emit_dir = std::string(value);
        } else if (parseFlag(arg, "--known", value)) {
            known_dir = std::string(value);
        } else if (parseFlag(arg, "--timeline", value)) {
            timeline_dir = std::string(value);
        } else {
            usage(std::cerr);
            fatal("unknown argument: ", std::string(arg));
        }
    }
    fatal_if(options.budget == 0, "--budget must be >= 1");

    ibp::obs::ProbeRegistry probes;
    const ibp::sim::FuzzReport report =
        ibp::sim::runFuzz(options, &probes);

    if (out_path.empty()) {
        ibp::sim::writeFindingsJson(std::cout, report);
    } else {
        std::ofstream out(out_path, std::ios::binary);
        fatal_if(!out, "cannot write ", out_path);
        ibp::sim::writeFindingsJson(out, report);
    }

    if (!emit_dir.empty()) {
        fs::create_directories(emit_dir);
        for (const auto &finding : report.findings)
            ibp::workload::saveProfileFile(
                (fs::path(emit_dir) /
                 (ibp::sim::suggestedProfileName(finding) + ".json"))
                    .string(),
                finding.profile);
    }

    if (!timeline_dir.empty()) {
        fs::create_directories(timeline_dir);
        for (const auto &finding : report.findings)
            writeFindingTimeline(timeline_dir, finding);
    }

    std::cerr << "fuzz: " << report.generated << " generated, "
              << report.evaluated << " evaluated ("
              << report.skippedCovered << " coverage-pruned, "
              << report.waves << " waves), " << report.shrinkEvals
              << " shrink evals, " << report.findings.size()
              << " findings\n";
    for (const auto &finding : report.findings)
        std::cerr << "  [" << ibp::sim::findingKindName(finding.kind)
                  << "] " << finding.detail
                  << (finding.minimized ? " (minimized)" : "") << "\n";

    if (!known_dir.empty()) {
        const std::vector<std::string> known =
            knownProfileNames(known_dir);
        bool all_known = true;
        for (const auto &finding : report.findings) {
            const std::string name =
                ibp::sim::suggestedProfileName(finding);
            bool matched = false;
            for (const std::string &k : known)
                matched |= k == name;
            if (!matched) {
                std::cerr << "new finding not pinned under "
                          << known_dir << ": " << name << "\n";
                all_known = false;
            }
        }
        if (!all_known)
            return 3;
    }
    return 0;
}
