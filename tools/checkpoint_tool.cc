/**
 * @file
 * checkpoint_tool: inspect, validate and compare "IBPC" checkpoint
 * files (simulation snapshots and suite progress files, see
 * sim/checkpoint.hh).
 *
 *   checkpoint_tool <file>                     pretty-print one file
 *   checkpoint_tool --validate <file>          structural validation
 *   checkpoint_tool --diff <a> <b>             compare two files
 *                   [--ignore-probes]
 *
 * --validate exits non-zero iff the file is corrupt, truncated, or
 * missing a required section; it never needs the predictor that wrote
 * the file, so it works on any checkpoint from any configuration.
 * --diff exits non-zero iff the two files disagree on anything
 * architectural: meta/fingerprint, cell results, or state payload
 * bytes.  Timing fields are reported as informational notes only, and
 * --ignore-probes additionally excludes the instrumentation payloads —
 * the combination under which an interrupted-and-resumed run must
 * compare clean against a straight one.
 */

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/serde.hh"
#include "sim/checkpoint.hh"

namespace {

using namespace ibp;

int
usage()
{
    std::cerr
        << "usage: checkpoint_tool <file>\n"
        << "       checkpoint_tool --validate <file>\n"
        << "       checkpoint_tool --diff <a> <b> [--ignore-probes]\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "checkpoint_tool: " << message << '\n';
    return 1;
}

bool
load(const std::string &path, std::vector<std::uint8_t> &bytes,
     std::string &kind, std::string &error)
{
    if (util::Status status = sim::readCheckpointFile(path, bytes);
        !status.ok()) {
        error = status.message();
        return false;
    }
    if (util::Status status = sim::checkpointKind(bytes, kind);
        !status.ok()) {
        error = path + ": " + status.message();
        return false;
    }
    return true;
}

/**
 * A structural walk of a "sim" blob: section names, sizes and the
 * decoded meta.  Payload contents beyond meta are opaque without the
 * predictor that wrote them, but framing errors, truncation and a
 * missing required section are all detectable.
 */
struct SimLayout
{
    sim::CheckpointMeta meta;
    /** (section name, payload size) in file order. */
    std::vector<std::pair<std::string, std::size_t>> sections;
    /** Raw payload bytes per section (first occurrence wins). */
    std::map<std::string, std::string> payload;
};

bool
walkSim(const std::vector<std::uint8_t> &bytes, SimLayout &layout,
        std::string &error)
{
    if (util::Status status =
            sim::decodeSimCheckpointMeta(bytes, layout.meta);
        !status.ok()) {
        error = status.message();
        return false;
    }
    util::StateReader reader(bytes);
    std::string kind;
    if (util::Status status = sim::checkpointKind(bytes, kind);
        !status.ok()) {
        error = status.message();
        return false;
    }
    // Re-walk past the header the kind probe already validated.
    reader.readU32();
    reader.readU16();
    reader.readString();
    std::string name;
    util::StateReader payload;
    bool saw_predictor = false;
    bool saw_engine = false;
    bool saw_probes = false;
    while (reader.nextSection(name, payload)) {
        layout.sections.emplace_back(name, payload.size());
        std::string raw(payload.size(), '\0');
        payload.readBytes(raw.data(), raw.size());
        layout.payload.emplace(name, std::move(raw));
        saw_predictor |= name == "predictor";
        saw_engine |= name == "engine";
        saw_probes |= name == "probes";
    }
    if (!reader.ok()) {
        error = reader.status().message();
        return false;
    }
    if (!saw_predictor || !saw_engine || !saw_probes) {
        error = "checkpoint is missing a required section";
        return false;
    }
    return true;
}

int
inspect(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::string kind;
    std::string error;
    if (!load(path, bytes, kind, error))
        return fail(error);

    std::cout << path << ": " << kind << " checkpoint, version "
              << sim::kCheckpointVersion << ", " << bytes.size()
              << " bytes\n";

    if (kind == sim::kCheckpointKindSim) {
        SimLayout layout;
        if (!walkSim(bytes, layout, error))
            return fail(error);
        std::cout << "  predictor    " << layout.meta.predictor << '\n'
                  << "  profile      "
                  << (layout.meta.profile.empty() ? "(none)"
                                                  : layout.meta.profile)
                  << '\n'
                  << "  cursor       " << layout.meta.cursor
                  << " records\n"
                  << "  fingerprint  " << layout.meta.fingerprint
                  << '\n';
        for (const auto &[name, size] : layout.sections)
            std::cout << "  section " << name << ": " << size
                      << " bytes\n";
        return 0;
    }

    sim::SuiteProgress progress;
    if (util::Status status = sim::decodeSuiteProgress(bytes, progress);
        !status.ok())
        return fail(path + ": " + status.message());
    std::cout << "  fingerprint  " << progress.fingerprint << '\n'
              << "  completed cells: " << progress.cells.size() << '\n';
    for (const auto &cell : progress.cells)
        std::cout << "    (" << cell.row << ", " << cell.col
                  << ")  miss " << cell.cell.missPercent << "%  over "
                  << cell.cell.predictions << " predictions\n";
    if (progress.partial.valid)
        std::cout << "  partial cell (" << progress.partial.row << ", "
                  << progress.partial.col << ") at record "
                  << progress.partial.cursor << " ("
                  << progress.partial.predictorState.size()
                  << " predictor bytes, "
                  << progress.partial.engineState.size()
                  << " engine bytes, "
                  << progress.partial.probeState.size()
                  << " probe bytes)\n";
    else
        std::cout << "  no partial cell\n";
    return 0;
}

int
validate(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::string kind;
    std::string error;
    if (!load(path, bytes, kind, error))
        return fail(error);
    if (kind == sim::kCheckpointKindSim) {
        SimLayout layout;
        if (!walkSim(bytes, layout, error))
            return fail(path + ": " + error);
    } else if (kind == sim::kCheckpointKindSuite) {
        sim::SuiteProgress progress;
        if (util::Status status =
                sim::decodeSuiteProgress(bytes, progress);
            !status.ok())
            return fail(path + ": " + status.message());
    } else {
        return fail(path + ": unknown checkpoint kind \"" + kind +
                    "\"");
    }
    std::cout << path << ": OK (" << kind << ")\n";
    return 0;
}

/** Accumulates differences; timing-only deltas are notes, not fails. */
struct Diff
{
    std::vector<std::string> failures;
    std::vector<std::string> notes;

    void failure(std::string message)
    {
        failures.push_back(std::move(message));
    }
    void note(std::string message)
    {
        notes.push_back(std::move(message));
    }
};

void
diffSim(const SimLayout &a, const SimLayout &b, bool ignore_probes,
        Diff &diff)
{
    if (a.meta.predictor != b.meta.predictor)
        diff.failure("predictor " + a.meta.predictor + " vs " +
                     b.meta.predictor);
    if (a.meta.profile != b.meta.profile)
        diff.failure("profile " + a.meta.profile + " vs " +
                     b.meta.profile);
    if (a.meta.fingerprint != b.meta.fingerprint)
        diff.failure("fingerprint mismatch");
    if (a.meta.cursor != b.meta.cursor)
        diff.failure("cursor " + std::to_string(a.meta.cursor) +
                     " vs " + std::to_string(b.meta.cursor));
    for (const char *name : {"predictor", "engine", "probes"}) {
        if (ignore_probes && std::string(name) == "probes")
            continue;
        const auto left = a.payload.find(name);
        const auto right = b.payload.find(name);
        if (left == a.payload.end() || right == b.payload.end()) {
            diff.failure(std::string(name) +
                         " section present in only one file");
            continue;
        }
        if (left->second != right->second)
            diff.failure(std::string(name) +
                         " state payloads differ (" +
                         std::to_string(left->second.size()) + " vs " +
                         std::to_string(right->second.size()) +
                         " bytes)");
    }
}

void
diffSuite(const sim::SuiteProgress &a, const sim::SuiteProgress &b,
          bool ignore_probes, Diff &diff)
{
    if (a.fingerprint != b.fingerprint)
        diff.failure("suite fingerprint mismatch");
    for (const auto &cell : a.cells) {
        const sim::CompletedCell *other = b.find(cell.row, cell.col);
        if (other == nullptr) {
            diff.failure("cell (" + cell.row + ", " + cell.col +
                         ") missing from the second file");
            continue;
        }
        const std::string where =
            "(" + cell.row + ", " + cell.col + ") ";
        if (cell.cell.missPercent != other->cell.missPercent)
            diff.failure(where + "miss% differs");
        if (cell.cell.noPredictionPercent !=
            other->cell.noPredictionPercent)
            diff.failure(where + "no-prediction% differs");
        if (cell.cell.predictions != other->cell.predictions)
            diff.failure(where + "prediction count differs");
        if (cell.cell.wallSeconds != other->cell.wallSeconds ||
            cell.cell.cpuSeconds != other->cell.cpuSeconds)
            diff.note(where + "timing differs (informational)");
        if (!ignore_probes &&
            (cell.probes.counters() != other->probes.counters() ||
             cell.probes.histograms() != other->probes.histograms()))
            diff.failure(where + "probe registries differ");
    }
    for (const auto &cell : b.cells)
        if (a.find(cell.row, cell.col) == nullptr)
            diff.failure("cell (" + cell.row + ", " + cell.col +
                         ") only in the second file");
    if (a.partial.valid != b.partial.valid)
        diff.note("partial cell present in only one file "
                  "(informational)");
}

int
diffFiles(const std::string &path_a, const std::string &path_b,
          bool ignore_probes)
{
    std::vector<std::uint8_t> bytes_a;
    std::vector<std::uint8_t> bytes_b;
    std::string kind_a;
    std::string kind_b;
    std::string error;
    if (!load(path_a, bytes_a, kind_a, error))
        return fail(error);
    if (!load(path_b, bytes_b, kind_b, error))
        return fail(error);
    if (kind_a != kind_b)
        return fail("cannot diff a " + kind_a + " checkpoint against a " +
                    kind_b + " one");

    Diff diff;
    if (kind_a == sim::kCheckpointKindSim) {
        SimLayout a;
        SimLayout b;
        if (!walkSim(bytes_a, a, error))
            return fail(path_a + ": " + error);
        if (!walkSim(bytes_b, b, error))
            return fail(path_b + ": " + error);
        diffSim(a, b, ignore_probes, diff);
    } else {
        sim::SuiteProgress a;
        sim::SuiteProgress b;
        if (util::Status status = sim::decodeSuiteProgress(bytes_a, a);
            !status.ok())
            return fail(path_a + ": " + status.message());
        if (util::Status status = sim::decodeSuiteProgress(bytes_b, b);
            !status.ok())
            return fail(path_b + ": " + status.message());
        diffSuite(a, b, ignore_probes, diff);
    }

    for (const auto &note : diff.notes)
        std::cout << "note: " << note << '\n';
    if (diff.failures.empty()) {
        std::cout << "checkpoints are equivalent\n";
        return 0;
    }
    for (const auto &failure : diff.failures)
        std::cout << "FAIL: " << failure << '\n';
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();

    if (args[0] == "--validate")
        return args.size() == 2 ? validate(args[1]) : usage();

    if (args[0] == "--diff") {
        bool ignore_probes = false;
        std::vector<std::string> paths;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--ignore-probes")
                ignore_probes = true;
            else
                paths.push_back(args[i]);
        }
        if (paths.size() != 2)
            return usage();
        return diffFiles(paths[0], paths[1], ignore_probes);
    }

    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage();
    return inspect(args[0]);
}
